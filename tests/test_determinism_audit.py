"""Deterministic-seed audit: the whole offline pipeline, twice, bit-equal.

PR 3 vectorized the offline pipeline under an explicit RNG-stream
contract: for a given seed, batched dataset generation draws exactly the
same samples, the MLP fit consumes exactly the same stream, and the
simulated device's noise is a pure function of its inputs.  Everything
downstream — the saved fits, the profile caches, and the deterministic
parts of every BENCH_*.json smoke number (speedups are wall-clock;
configs, measurements and bit-identity flags are not) — leans on that
contract.

This audit runs the smoke-scale pipeline twice, end to end, and asserts
bit-identical artifacts at every stage: dataset tensors, fitted weights,
validation MSE, searched top-k lists, re-ranked measurements, and the
engine replies built from them.  If an RNG stream is ever reordered (the
exact regression batching could have introduced), this is the test that
names the stage.
"""

import numpy as np

from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.sampling.dataset import fit_generative_models, generate_dataset

N_SAMPLES = 500
SEED = 123
QUERY = GemmShape(384, 384, 768, DType.FP32, False, True)


def _tuned() -> Isaac:
    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(n_samples=N_SAMPLES, seed=SEED, epochs=8,
               generative_target=80)
    return tuner


def test_offline_pipeline_is_bit_reproducible():
    first = _tuned()
    second = _tuned()

    # Stage 1 — data generation: identical sample tensors.
    assert np.array_equal(first.dataset.x, second.dataset.x)
    assert np.array_equal(first.dataset.y, second.dataset.y)

    # Stage 2 — regression: identical fit, not merely similar.
    assert first.fit_result.val_mse == second.fit_result.val_mse
    for a, b in zip(first.fit_result.model.layers,
                    second.fit_result.model.layers):
        assert np.array_equal(a.w, b.w)
        assert np.array_equal(a.b, b.b)
    assert np.array_equal(first.fit_result.x_scaler.mean_,
                          second.fit_result.x_scaler.mean_)
    assert np.array_equal(first.fit_result.x_scaler.scale_,
                          second.fit_result.x_scaler.scale_)

    # Stage 3 — runtime: identical shortlists and identical winner.
    top_a = first.top_k(QUERY, 20)
    top_b = second.top_k(QUERY, 20)
    assert [p.config for p in top_a] == [p.config for p in top_b]
    assert [p.predicted_tflops for p in top_a] == [
        p.predicted_tflops for p in top_b
    ]
    best_a = first.best_kernel(QUERY, k=20, reps=3)
    best_b = second.best_kernel(QUERY, k=20, reps=3)
    assert best_a.config == best_b.config
    assert best_a.measured_tflops == best_b.measured_tflops


def test_batched_dataset_stream_matches_seeded_rerun():
    """generate_dataset with an equal-state rng is bit-stable on its own
    (the tuner-level audit above could mask a compensating pair of
    divergences; this pins the stage in isolation)."""
    device = TESLA_P100
    samplers = fit_generative_models(
        device, op="gemm", dtypes=(DType.FP32,),
        rng=np.random.default_rng(9), target_accepted=80,
    )
    runs = [
        generate_dataset(
            device, "gemm", 300, np.random.default_rng(42),
            samplers=samplers, dtypes=(DType.FP32,),
        )
        for _ in range(2)
    ]
    assert np.array_equal(runs[0].x, runs[1].x)
    assert np.array_equal(runs[0].y, runs[1].y)


def test_simulated_measurements_are_pure():
    """The BENCH smoke numbers' measurement side: same (config, shape,
    reps) in, bit-identical TFLOPS out, batched or repeated."""
    from repro.core.ops import get_op
    from repro.sampling.dataset import _sample_legal_configs

    device = TESLA_P100
    spec = get_op("gemm")
    rng = np.random.default_rng(5)
    sampler = fit_generative_models(
        device, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=80,
    )[DType.FP32]
    shapes = [spec.make_shape_sampler((DType.FP32,))(rng)
              for _ in range(24)]
    cfgs = _sample_legal_configs(
        device, spec, sampler, DType.FP32, len(shapes), rng
    )
    once = spec.benchmark_pairs(device, cfgs, shapes, reps=3)
    again = spec.benchmark_pairs(device, cfgs, shapes, reps=3)
    assert np.array_equal(once, again)
    scalar = np.array([
        spec.benchmark(device, c, s, reps=3)
        for c, s in zip(cfgs, shapes)
    ])
    assert np.array_equal(once, scalar)
