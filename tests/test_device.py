"""Tests for the simulated device specifications (paper Table 3)."""

import pytest

from repro.core.types import DType
from repro.gpu.device import (
    GTX_980_TI,
    TESLA_P100,
    all_devices,
    get_device,
)


class TestTable3Fidelity:
    """The public columns of Table 3 must match the paper verbatim."""

    def test_maxwell_row(self):
        d = GTX_980_TI
        assert d.cuda_cores == 2816
        assert d.boost_mhz == 1075
        assert d.mem_gb == 6
        assert d.mem_type == "GDDR5"
        assert d.mem_bw_gbs == 336.0
        assert d.tdp_w == 250
        assert d.market_segment == "Consumer"
        assert d.chip == "GM200"

    def test_pascal_row(self):
        d = TESLA_P100
        assert d.cuda_cores == 3584
        assert d.boost_mhz == 1353
        assert d.mem_gb == 16
        assert d.mem_type == "HBM2"
        assert d.mem_bw_gbs == 732.0
        assert d.tdp_w == 250
        assert d.market_segment == "Server"
        assert d.chip == "GP100"

    def test_peak_tflops_near_table3(self):
        # Paper: 5.8 TFLOPS / 9.7 TFLOPS (boost-dependent; within 6%).
        assert GTX_980_TI.peak_tflops(DType.FP32) == pytest.approx(5.8, rel=0.06)
        assert TESLA_P100.peak_tflops(DType.FP32) == pytest.approx(9.7, rel=0.06)

    def test_precision_ratios(self):
        assert TESLA_P100.peak_tflops(DType.FP64) == pytest.approx(
            TESLA_P100.peak_tflops(DType.FP32) / 2
        )
        assert TESLA_P100.peak_tflops(DType.FP16) == pytest.approx(
            TESLA_P100.peak_tflops(DType.FP32) * 2
        )
        # GM200 has no fast fp16 and 1/32 fp64.
        assert GTX_980_TI.peak_tflops(DType.FP16) == pytest.approx(
            GTX_980_TI.peak_tflops(DType.FP32)
        )
        assert GTX_980_TI.peak_tflops(DType.FP64) == pytest.approx(
            GTX_980_TI.peak_tflops(DType.FP32) / 32
        )


class TestFmaRate:
    def test_packed_fp16_needs_hardware(self):
        # Packed rate equals fp32 instruction rate (2 FLOPs each).
        assert TESLA_P100.fma_rate(DType.FP16, packed=True) == (
            TESLA_P100.fma_per_sm_per_cycle
        )
        # Maxwell ignores the packed request.
        assert GTX_980_TI.fma_rate(DType.FP16, packed=True) == (
            GTX_980_TI.fma_per_sm_per_cycle
        )

    def test_fp64_rate_scaled(self):
        assert GTX_980_TI.fma_rate(DType.FP64, packed=False) == (
            GTX_980_TI.fma_per_sm_per_cycle / 32
        )


class TestRegistry:
    @pytest.mark.parametrize(
        "alias", ["gtx980ti", "GTX 980 TI", "maxwell", "Maxwell"]
    )
    def test_maxwell_aliases(self, alias):
        assert get_device(alias) is GTX_980_TI

    @pytest.mark.parametrize("alias", ["p100", "pascal", "Tesla P100 (PCIE)"])
    def test_pascal_aliases(self, alias):
        assert get_device(alias) is TESLA_P100

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("volta")

    def test_all_devices(self):
        assert all_devices() == (GTX_980_TI, TESLA_P100)

    def test_describe_rows_order(self):
        names = [n for n, _ in GTX_980_TI.describe_rows()]
        assert names[0] == "GPU" and names[-1] == "TDP"
        assert len(names) == 10
