"""Tests for the energy model (§4.1 'FLOPS, Joules, FLOPS/W')."""

import pytest

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.gpu.energy import (
    IDLE_FRAC,
    estimate_energy,
    gemm_energy,
)
from repro.gpu.simulator import simulate_gemm

GOOD = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)


class TestEnergyModel:
    def test_power_bounded_by_tdp(self, device):
        shape = GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        est = gemm_energy(device, GOOD, shape)
        assert IDLE_FRAC * device.tdp_w <= est.avg_power_w <= device.tdp_w

    def test_compute_bound_kernel_draws_near_tdp(self, maxwell):
        shape = GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        est = gemm_energy(maxwell, GOOD, shape)
        assert est.avg_power_w > 0.6 * maxwell.tdp_w

    def test_starved_kernel_draws_little(self, maxwell):
        cfg = GemmConfig(ms=4, ns=4, ml=32, nl=32, u=8, vec=1, db=1)
        shape = GemmShape(32, 32, 60000, DType.FP32, False, True)
        est = gemm_energy(maxwell, cfg, shape)
        assert est.avg_power_w < 0.55 * maxwell.tdp_w

    def test_energy_is_power_times_time(self, pascal):
        shape = GemmShape(1024, 1024, 1024, DType.FP32, False, True)
        stats = simulate_gemm(pascal, GOOD, shape)
        est = estimate_energy(pascal, stats, shape.dtype)
        assert est.energy_j == pytest.approx(
            est.avg_power_w * stats.time_ms * 1e-3
        )

    def test_efficiency_metric(self, pascal):
        shape = GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        est = gemm_energy(pascal, GOOD, shape)
        # P100 fp32 practical efficiency: tens of GFLOPS/W.
        assert 10 < est.gflops_per_watt < 60

    def test_fp16_more_efficient_than_fp32_on_pascal(self, pascal):
        s32 = GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        s16 = GemmShape(2048, 2048, 2048, DType.FP16, False, True)
        e32 = gemm_energy(pascal, GOOD, s32)
        e16 = gemm_energy(pascal, GOOD, s16)
        assert e16.gflops_per_watt > 1.4 * e32.gflops_per_watt

    def test_edp_positive(self, maxwell):
        shape = GemmShape(512, 512, 512, DType.FP32, False, True)
        est = gemm_energy(maxwell, GOOD, shape)
        assert est.edp > 0

    def test_wasteful_tile_costs_energy(self, maxwell, skinny_shape):
        """Padding waste burns Joules: the wide tile spends more energy per
        useful FLOP than the narrow one."""
        wide = GemmConfig(ms=8, ns=8, ml=128, nl=64, u=8, vec=4, db=2)
        narrow = GemmConfig(ms=2, ns=4, ml=64, nl=16, u=16, kg=4, vec=2, db=2)
        e_wide = gemm_energy(maxwell, wide, skinny_shape)
        e_narrow = gemm_energy(maxwell, narrow, skinny_shape)
        assert e_narrow.gflops_per_watt > e_wide.gflops_per_watt
