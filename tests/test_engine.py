"""Tests for the Engine facade: caching, batching, concurrency, lifecycle."""

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.batched import BatchedGemmShape
from repro.core.profile_cache import ProfileCache
from repro.core.tuner import Isaac
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.service.engine import Engine, EngineError, KernelRequest
from repro.workloads.networks import rnn_training_step

GEMM_SHAPES = [
    GemmShape(512, 512, 512, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 8192, DType.FP32, False, True),
]


def _engine(*tuners: Isaac, **kwargs) -> Engine:
    kwargs.setdefault("max_workers", 0)
    engine = Engine(**kwargs)
    for tuner in tuners:
        engine.register(tuner)
    return engine


class TestQuery:
    def test_search_then_lru(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        req = KernelRequest("gemm", GEMM_SHAPES[0], k=20, reps=2)
        first = engine.query(req)
        assert first.source == "search"
        again = engine.query(req)
        assert again.source == "lru"
        assert again.config == first.config
        assert again.measured_tflops == first.measured_tflops
        assert math.isnan(again.predicted_tflops)
        stats = engine.stats()
        assert stats.searches == 1 and stats.lru_hits == 1

    def test_matches_isaac_best_kernel(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        reply = engine.query(KernelRequest("gemm", GEMM_SHAPES[1], k=25,
                                           reps=2))
        best = trained_gemm_tuner.best_kernel(GEMM_SHAPES[1], k=25, reps=2)
        assert reply.config == best.config
        assert reply.measured_tflops == best.measured_tflops
        assert reply.predicted_tflops == best.predicted_tflops

    def test_device_inferred_when_unambiguous(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        reply = engine.query(KernelRequest("gemm", GEMM_SHAPES[0], k=10,
                                           reps=1))
        assert reply.request.device == TESLA_P100.name

    def test_device_alias_accepted(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        reply = engine.query(
            KernelRequest("gemm", GEMM_SHAPES[0], device="pascal", k=10,
                          reps=1)
        )
        assert reply.request.device == TESLA_P100.name

    def test_rejects_wrong_shape_type(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        with pytest.raises(EngineError, match="expects GemmShape"):
            engine.query(
                KernelRequest(
                    "gemm",
                    ConvShape.from_output(n=1, p=4, q=4, k=8, c=4, r=3, s=3),
                )
            )

    def test_rejects_unserved_op(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        shape = ConvShape.from_output(n=1, p=4, q=4, k=8, c=4, r=3, s=3)
        with pytest.raises(EngineError, match="no model"):
            engine.query(KernelRequest("conv", shape))

    def test_register_requires_tuned(self):
        with pytest.raises(EngineError, match="not tuned"):
            Engine().register(Isaac(TESLA_P100, op="gemm"))

    def test_rejects_nonpositive_k_and_reps(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        with pytest.raises(EngineError, match="k must be >= 1"):
            engine.query(KernelRequest("gemm", GEMM_SHAPES[0], k=0))
        with pytest.raises(EngineError, match="reps must be >= 1"):
            engine.query(
                KernelRequest("gemm", GEMM_SHAPES[0], k=10, reps=-1)
            )
        assert engine.stats().queries == 0  # nothing was admitted

    def test_constructor_rejects_degenerate_knobs(self):
        with pytest.raises(ValueError, match="max_workers"):
            Engine(max_workers=-1)
        with pytest.raises(ValueError, match="cascade_keep"):
            Engine(cascade_keep=0)


class TestStatsContract:
    """Fresh-engine stats never divide by zero: every ratio is 0.0
    before any traffic, and the ratios partition once traffic flows."""

    def test_fresh_engine_ratios_are_zero(self):
        engine = Engine(max_workers=0)
        stats = engine.stats()
        assert stats.queries == 0
        assert stats.lru_hit_ratio == 0.0
        assert stats.profile_hit_ratio == 0.0
        assert stats.hit_ratio == 0.0
        for value in (stats.lru_hit_ratio, stats.profile_hit_ratio,
                      stats.hit_ratio):
            assert isinstance(value, float)
            assert not math.isnan(value)
        engine.close()

    def test_fresh_async_engine_reports_zero_not_nan(self):
        """The async side follows the same contract: empty latency
        reservoirs and batch histograms report 0.0, not NaN."""
        from repro.service.async_engine import AsyncEngine, ShardStats

        engine = AsyncEngine(Engine(max_workers=0), own_engine=True)
        try:
            stats = engine.stats()
            for value in (stats.hit_p50_ms, stats.hit_p95_ms,
                          stats.miss_p50_ms, stats.miss_p95_ms):
                assert value == 0.0
        finally:
            engine.close()
        empty_shard = ShardStats(
            shard=("d", "gemm", "fp32", 10, 2), queue_depth=0,
            submitted=0, batches=0, flush_reasons={}, batch_sizes={},
            p50_ms=0.0, p95_ms=0.0, max_ms=0.0,
        )
        assert empty_shard.mean_batch == 0.0

    def test_ratios_partition_after_traffic(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        req = KernelRequest("gemm", GEMM_SHAPES[0], k=10, reps=2)
        engine.query(req)   # search
        engine.query(req)   # lru hit
        stats = engine.stats()
        assert stats.queries == 2
        assert stats.lru_hit_ratio == 0.5
        assert stats.profile_hit_ratio == 0.0
        assert stats.hit_ratio == 0.5


class TestTwoLevelCache:
    def test_lru_eviction_falls_back_to_profile_cache(
        self, trained_gemm_tuner, tmp_path
    ):
        engine = _engine(
            trained_gemm_tuner,
            profile_cache=tmp_path / "profiles.json",
            lru_capacity=2,
        )
        replies = [
            engine.query(KernelRequest("gemm", s, k=15, reps=2))
            for s in GEMM_SHAPES
        ]
        assert engine.stats().evictions == 1
        # The oldest shape fell out of the LRU but not out of the engine:
        # the write-through profile cache still has it — no re-search.
        again = engine.query(KernelRequest("gemm", GEMM_SHAPES[0], k=15,
                                           reps=2))
        assert again.source == "profile"
        assert again.config == replies[0].config
        assert again.measured_tflops == replies[0].measured_tflops
        assert engine.stats().searches == len(GEMM_SHAPES)

    def test_profiles_survive_reopen(self, trained_gemm_tuner, tmp_path):
        path = tmp_path / "profiles.json"
        with _engine(trained_gemm_tuner, profile_cache=path) as engine:
            first = engine.query(KernelRequest("gemm", GEMM_SHAPES[0], k=15,
                                               reps=2))
        assert path.exists()  # close() flushed atomically

        fresh = _engine(trained_gemm_tuner, profile_cache=path)
        reply = fresh.query(KernelRequest("gemm", GEMM_SHAPES[0], k=15,
                                          reps=2))
        assert reply.source == "profile"
        assert reply.config == first.config
        assert fresh.stats().searches == 0

    def test_closed_engine_rejects_queries(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(EngineError, match="closed"):
            engine.query(KernelRequest("gemm", GEMM_SHAPES[0]))


class TestConcurrency:
    N_THREADS = 12

    def _counting_engine(self, tuner, monkeypatch):
        engine = _engine(tuner, lru_capacity=64)
        calls: list = []
        lock = threading.Lock()
        orig = tuner.top_k

        def counting_top_k(shape, k=100):
            with lock:
                calls.append(shape)
            time.sleep(0.005)  # widen the race window
            return orig(shape, k)

        monkeypatch.setattr(tuner, "top_k", counting_top_k)
        return engine, calls

    def test_concurrent_same_shape_searches_once(
        self, trained_gemm_tuner, monkeypatch
    ):
        engine, calls = self._counting_engine(trained_gemm_tuner, monkeypatch)
        barrier = threading.Barrier(self.N_THREADS)

        def ask(_):
            barrier.wait()
            return engine.query(KernelRequest("gemm", GEMM_SHAPES[0], k=10,
                                              reps=2))

        with ThreadPoolExecutor(self.N_THREADS) as pool:
            replies = list(pool.map(ask, range(self.N_THREADS)))

        assert len(calls) == 1  # one leader searched; the rest waited
        assert len({str(r.config) for r in replies}) == 1
        assert {r.measured_tflops for r in replies} == {
            replies[0].measured_tflops
        }
        stats = engine.stats()
        assert stats.searches == 1
        # Every non-leader ends up served from the LRU (after waiting on
        # the in-flight search if it arrived during it).
        assert stats.lru_hits == self.N_THREADS - 1

    def test_concurrent_distinct_shapes_search_each_once(
        self, trained_gemm_tuner, monkeypatch
    ):
        engine, calls = self._counting_engine(trained_gemm_tuner, monkeypatch)
        requests = [
            KernelRequest("gemm", GEMM_SHAPES[i % len(GEMM_SHAPES)], k=10,
                          reps=2)
            for i in range(self.N_THREADS)
        ]
        barrier = threading.Barrier(self.N_THREADS)

        def ask(req):
            barrier.wait()
            return engine.query(req)

        with ThreadPoolExecutor(self.N_THREADS) as pool:
            replies = list(pool.map(ask, requests))

        assert len(calls) == len(GEMM_SHAPES)  # exactly one per distinct
        assert engine.stats().searches == len(GEMM_SHAPES)
        # No cross-contamination: every reply matches its own shape's
        # sequential answer.
        for req, reply in zip(requests, replies):
            expected = engine.query(req)  # cache hit now
            assert expected.source in ("lru", "profile")
            assert reply.config == expected.config

    def test_concurrent_query_many(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner, lru_capacity=64)
        requests = [
            KernelRequest("gemm", s, k=10, reps=2) for s in GEMM_SHAPES
        ]

        def ask_many(_):
            return engine.query_many(requests)

        with ThreadPoolExecutor(4) as pool:
            batches = list(pool.map(ask_many, range(4)))

        for batch in batches:
            assert [str(r.config) for r in batch] == [
                str(r.config) for r in batches[0]
            ]
        # 4 concurrent batches over 3 shapes still cost 3 searches total.
        assert engine.stats().searches == len(GEMM_SHAPES)


class TestQueryMany:
    def test_mixed_ops_match_per_shape_best_kernel(
        self, trained_gemm_tuner, small_conv_tuner, small_bgemm_tuner
    ):
        engine = Engine()  # default thread pool: the parallel path
        for tuner in (trained_gemm_tuner, small_conv_tuner, small_bgemm_tuner):
            engine.register(tuner)
        tuners = {"gemm": trained_gemm_tuner, "conv": small_conv_tuner,
                  "bgemm": small_bgemm_tuner}

        conv_shapes = [
            ConvShape.from_output(n=2, p=6, q=6, k=16, c=8, r=3, s=3),
            ConvShape.from_output(n=1, p=8, q=8, k=32, c=16, r=3, s=3),
        ]
        bgemm_shapes = [
            BatchedGemmShape(batch=32, base=GemmShape(64, 64, 256)),
            BatchedGemmShape(batch=8, base=GemmShape(128, 32, 512)),
        ]
        requests = [
            KernelRequest("gemm", s, k=15, reps=2) for s in GEMM_SHAPES
        ] + [
            KernelRequest("conv", s, k=15, reps=2) for s in conv_shapes
        ] + [
            KernelRequest("bgemm", s, k=15, reps=2) for s in bgemm_shapes
        ]

        replies = engine.query_many(requests)

        assert [r.request.op for r in replies] == [r.op for r in requests]
        for req, reply in zip(requests, replies):
            best = tuners[req.op].best_kernel(req.shape, k=15, reps=2)
            assert reply.config == best.config, req
            assert reply.measured_tflops == best.measured_tflops
            assert reply.source == "search"
        engine.close()

    def test_duplicate_requests_collapse(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        shape = GEMM_SHAPES[0]
        replies = engine.query_many(
            [KernelRequest("gemm", shape, k=10, reps=2)] * 5
        )
        assert engine.stats().searches == 1
        assert len({str(r.config) for r in replies}) == 1

    def test_empty_request_list(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        assert engine.query_many([]) == []


class TestWarmup:
    def test_warmup_populates_cache(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        step = rnn_training_step(hidden=256, batch=16, timesteps=2)
        distinct = len({shape for _, shape in step.kernels})
        fresh = engine.warmup(step, k=10, reps=2)
        assert fresh == distinct
        # Everything is now hot: a second warmup searches nothing.
        assert engine.warmup(step, k=10, reps=2) == 0
        for _, shape in step.kernels:
            reply = engine.query(KernelRequest("gemm", shape, k=10, reps=2))
            assert reply.source == "lru"

    def test_op_for_shape(self, trained_gemm_tuner):
        engine = _engine(trained_gemm_tuner)
        assert engine.op_for_shape(GEMM_SHAPES[0]) == "gemm"
        with pytest.raises(EngineError, match="no served op"):
            engine.op_for_shape(
                ConvShape.from_output(n=1, p=4, q=4, k=8, c=4, r=3, s=3)
            )


class TestModelStore:
    def test_open_lazily_loads_saved_fits(self, trained_gemm_tuner,
                                          tmp_path):
        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")
        with Engine.open(tmp_path, max_workers=0) as engine:
            assert engine.devices() == (TESLA_P100.name,)
            assert engine.ops() == ("gemm",)
            reply = engine.query(KernelRequest("gemm", GEMM_SHAPES[0], k=15,
                                               reps=2))
            assert reply.source == "search"
            best = trained_gemm_tuner.best_kernel(GEMM_SHAPES[0], k=15,
                                                  reps=2)
            assert reply.config == best.config
        # close() flushed the default profile store inside the model dir.
        assert (tmp_path / "profiles.json").exists()

        with Engine.open(tmp_path, max_workers=0) as engine:
            reply = engine.query(KernelRequest("gemm", GEMM_SHAPES[0], k=15,
                                               reps=2))
            assert reply.source == "profile"

    def test_open_rejects_missing_dir(self, tmp_path):
        with pytest.raises(EngineError, match="does not exist"):
            Engine.open(tmp_path / "nope")

    def test_open_ignores_unrelated_files(self, tmp_path):
        (tmp_path / "notes.npz").write_bytes(b"not a model")
        engine = Engine.open(tmp_path)
        assert engine.devices() == ()
        with pytest.raises(EngineError, match="no model"):
            engine.query(KernelRequest("gemm", GEMM_SHAPES[0],
                                       device="pascal"))


class TestRankedKernelSource:
    def test_best_kernel_distinguishes_cache_hits(self, trained_gemm_tuner,
                                                  tmp_path):
        cache = ProfileCache(tmp_path / "profiles.json")
        shape = GemmShape(384, 384, 384, DType.FP32, False, True)
        first = trained_gemm_tuner.best_kernel(shape, k=10, reps=2,
                                               cache=cache)
        assert first.source == "reranked"
        assert first.predicted_tflops > 0

        hit = trained_gemm_tuner.best_kernel(shape, k=10, reps=2,
                                             cache=cache)
        assert hit.source == "cache"
        assert hit.config == first.config
        assert hit.measured_tflops == first.measured_tflops
        # The cache stores only measurements; no fake prediction.
        assert math.isnan(hit.predicted_tflops)
