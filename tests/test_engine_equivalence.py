"""Property/fuzz tests: every front door gives the same answer.

The serving stack is three layers deep — ``Isaac.best_kernel`` (the
paper's API), ``Engine.query`` (sync facade: caches + dedup + batching
planner) and ``AsyncEngine.query`` (micro-batching shards) — and the
whole design rests on one invariant: *layers change dispatch, never
answers*.  These tests hammer that invariant with randomized workloads:

* hypothesis-driven GEMM shapes through all three paths, asserting
  config- and measurement-identical replies;
* randomized mixed-op (gemm/conv/bgemm) workloads through sync and
  async batched dispatch vs the direct tuner;
* provenance labels: ``search`` -> ``lru``/``profile`` on the engine
  side, ``reranked`` -> ``cache`` on the ``Isaac`` + ``ProfileCache``
  side, with cache hits carrying NaN predictions (the caches persist
  only measurements).
"""

import asyncio
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batched import BatchedGemmShape
from repro.core.profile_cache import ProfileCache
from repro.core.types import ConvShape, DType, GemmShape
from repro.service.async_engine import AsyncEngine
from repro.service.engine import Engine, KernelRequest

K = 8
REPS = 2

_DIMS = st.sampled_from([16, 24, 48, 64, 96, 128, 256, 320, 512, 1024])


@st.composite
def gemm_shapes(draw) -> GemmShape:
    return GemmShape(
        m=draw(_DIMS),
        n=draw(_DIMS),
        k=draw(_DIMS),
        dtype=DType.FP32,
        ta=draw(st.booleans()),
        tb=draw(st.booleans()),
    )


@pytest.fixture(scope="module")
def front_doors(trained_gemm_tuner):
    """One sync Engine + one background-loop AsyncEngine, shared by the
    module (caches accumulate across examples — that is the point: a hit
    must equal the search that populated it)."""
    sync = Engine(max_workers=0)
    sync.register(trained_gemm_tuner)
    inner = Engine(max_workers=0)
    inner.register(trained_gemm_tuner)
    async_engine = AsyncEngine(inner, own_engine=True, max_workers=2)
    async_engine.start()
    yield sync, async_engine
    async_engine.close()
    sync.close()


@given(shape=gemm_shapes())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_all_front_doors_agree(front_doors, trained_gemm_tuner, shape):
    """Direct search == sync Engine == AsyncEngine, for any legal shape."""
    sync, async_engine = front_doors
    request = KernelRequest("gemm", shape, k=K, reps=REPS)

    direct = trained_gemm_tuner.best_kernel(shape, k=K, reps=REPS)
    via_sync = sync.query(request)
    via_async = async_engine.query_sync(request)

    assert via_sync.config == direct.config
    assert via_async.config == direct.config
    assert via_sync.measured_tflops == direct.measured_tflops
    assert via_async.measured_tflops == direct.measured_tflops
    assert via_sync.source in ("search", "lru", "profile")
    assert via_async.source in ("search", "lru", "profile")
    # Cache hits must not fabricate a model prediction.
    if via_async.source != "search":
        assert math.isnan(via_async.predicted_tflops)
    else:
        assert via_async.predicted_tflops == direct.predicted_tflops


@given(shape=gemm_shapes())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_cascade_front_door_matches_exhaustive(
    front_doors, trained_gemm_tuner, shape
):
    """The two-stage cascade changes dispatch, never answers: engine
    replies (served from the shortlist path) equal a direct search with
    the cascade forced off."""
    sync, async_engine = front_doors
    search = trained_gemm_tuner.searcher
    request = KernelRequest("gemm", shape, k=K, reps=REPS)
    via_sync = sync.query(request)
    via_async = async_engine.query_sync(request)
    try:
        search.set_cascade(False)
        direct = trained_gemm_tuner.best_kernel(shape, k=K, reps=REPS)
    finally:
        search.set_cascade(True)
    assert via_sync.config == direct.config
    assert via_async.config == direct.config
    assert via_sync.measured_tflops == direct.measured_tflops
    assert via_async.measured_tflops == direct.measured_tflops


def test_front_door_searches_used_the_cascade(front_doors):
    """The equivalence fuzz above ran through the shortlist path — the
    cascade counters prove it was exercised, not silently disarmed."""
    sync, async_engine = front_doors
    assert sync.stats().cascade_searches > 0
    astats = async_engine.stats()
    assert astats.cascade_searches > 0


@given(shape=gemm_shapes())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_async_repeat_is_cache_labelled(front_doors, shape):
    """A repeated shape is served from cache and labelled as such."""
    _sync, async_engine = front_doors
    request = KernelRequest("gemm", shape, k=K, reps=REPS)
    first = async_engine.query_sync(request)
    again = async_engine.query_sync(request)
    assert again.source == "lru"
    assert again.config == first.config
    assert again.measured_tflops == first.measured_tflops
    assert math.isnan(again.predicted_tflops)


@given(shape=gemm_shapes())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_isaac_cache_labels(trained_gemm_tuner, tmp_path_factory, shape):
    """Isaac + ProfileCache: fresh = 'reranked', hit = 'cache', same config."""
    cache = ProfileCache(
        tmp_path_factory.mktemp("profiles") / "profiles.json"
    )
    fresh = trained_gemm_tuner.best_kernel(shape, k=K, reps=REPS,
                                           cache=cache)
    hit = trained_gemm_tuner.best_kernel(shape, k=K, reps=REPS, cache=cache)
    assert fresh.source == "reranked"
    assert not math.isnan(fresh.predicted_tflops)
    assert hit.source == "cache"
    assert hit.config == fresh.config
    assert hit.measured_tflops == fresh.measured_tflops
    assert math.isnan(hit.predicted_tflops)


def _random_requests(rng: np.random.Generator, n: int):
    """A mixed gemm/conv/bgemm workload with duplicates."""
    requests = []
    for _ in range(n):
        op = rng.choice(["gemm", "conv", "bgemm"])
        if op == "gemm":
            m, nn, k = (int(2 ** rng.integers(4, 10)) for _ in range(3))
            shape = GemmShape(m, nn, k, DType.FP32,
                              bool(rng.integers(2)), bool(rng.integers(2)))
        elif op == "conv":
            shape = ConvShape.from_output(
                n=int(rng.integers(1, 5)),
                p=int(rng.integers(4, 13)),
                q=int(rng.integers(4, 13)),
                k=int(2 ** rng.integers(4, 7)),
                c=int(2 ** rng.integers(3, 6)),
                r=3, s=3,
            )
        else:
            shape = BatchedGemmShape(
                batch=int(2 ** rng.integers(3, 7)),
                base=GemmShape(int(2 ** rng.integers(5, 8)),
                               int(2 ** rng.integers(5, 8)),
                               int(2 ** rng.integers(5, 9))),
            )
        requests.append(KernelRequest(str(op), shape, k=K, reps=REPS))
    # Duplicates: popular shapes recur within one batch.
    dupes = [requests[int(i)] for i in rng.integers(0, n, size=n // 2)]
    return requests + dupes


@pytest.mark.parametrize("seed", [11, 97])
def test_mixed_op_fuzz_sync_and_async_match_direct(
    trained_gemm_tuner, small_conv_tuner, small_bgemm_tuner, seed
):
    """Randomized mixed-op batches: batched dispatch == per-shape search."""
    tuners = {"gemm": trained_gemm_tuner, "conv": small_conv_tuner,
              "bgemm": small_bgemm_tuner}
    requests = _random_requests(np.random.default_rng(seed), 12)

    sync = Engine()  # default thread pool: the parallel group path
    for tuner in tuners.values():
        sync.register(tuner)
    sync_replies = sync.query_many(requests)
    sync.close()

    inner = Engine(max_workers=0)
    for tuner in tuners.values():
        inner.register(tuner)

    async def main():
        async with AsyncEngine(inner, own_engine=True,
                               max_workers=2) as engine:
            return await engine.query_many(requests)

    async_replies = asyncio.run(main())

    for req, s_reply, a_reply in zip(requests, sync_replies, async_replies):
        direct = tuners[req.op].best_kernel(req.shape, k=K, reps=REPS)
        assert s_reply.config == direct.config, req
        assert a_reply.config == direct.config, req
        assert s_reply.measured_tflops == direct.measured_tflops
        assert a_reply.measured_tflops == direct.measured_tflops


def test_worker_tier_fuzz_matches_direct(
    trained_gemm_tuner, small_conv_tuner, small_bgemm_tuner
):
    """The fourth front door: worker *processes* answer like the tuner.

    The same randomized mixed-op workload, but every miss flush executes
    in a spawned worker rebuilt from shared memory — the answers must
    still be config- and measurement-identical to the direct search.
    """
    tuners = {"gemm": trained_gemm_tuner, "conv": small_conv_tuner,
              "bgemm": small_bgemm_tuner}
    requests = _random_requests(np.random.default_rng(23), 10)
    # Direct answers first: this also warms the parent's candidate
    # caches, so worker boot ships (and seeds) the hot records.
    direct = {
        id(req): tuners[req.op].best_kernel(req.shape, k=K, reps=REPS)
        for req in requests
    }

    inner = Engine(max_workers=0)
    for tuner in tuners.values():
        inner.register(tuner)

    async def main():
        async with AsyncEngine(inner, own_engine=True,
                               workers=2) as engine:
            booted = await asyncio.get_running_loop().run_in_executor(
                None, engine.start_workers
            )
            assert booted == 2
            replies = await engine.query_many(requests)
            return replies, engine.stats()

    replies, stats = asyncio.run(main())

    assert stats.workers == 2
    assert stats.worker_flushes >= 1
    assert stats.worker_fallbacks == 0
    for req, reply in zip(requests, replies):
        want = direct[id(req)]
        assert reply.config == want.config, req
        assert reply.measured_tflops == want.measured_tflops, req
