"""Plumbing tests for the figure-level experiment runners (micro budget).

Full-budget versions with qualitative assertions live in benchmarks/;
these reuse the session tuner to exercise the complete data flow of the
GEMM figure runners, Table 6 and §8.1 in tens of seconds.
"""


from repro.harness.experiments import run_fig7, run_sec81, run_table6
from repro.workloads.gemm_suites import TABLE4_TASKS


class TestFig7Runner:
    def test_full_series(self, trained_gemm_tuner):
        result = run_fig7(tuner=trained_gemm_tuner, reps=2)
        assert result.exp_id == "fig7"
        assert len(result.data) == len(TABLE4_TASKS)
        for r in result.data:
            assert r.isaac_tflops > 0
            assert r.cublas_best_tflops > 0
        assert "Figure 7" in result.text
        assert "cuBLAS (Best Kernel)" in result.text


class TestTable6Runner:
    def test_choices_rendered(self, trained_gemm_tuner):
        result = run_table6(tuner=trained_gemm_tuner)
        assert len(result.data) == 10
        # Every chosen config must be a legal point of the space.
        from repro.core.legality import is_legal_gemm
        from repro.core.types import DType

        for (label, cfg), (_, shape) in zip(
            result.data,
            __import__(
                "repro.harness.experiments", fromlist=["TABLE6_PROBLEMS"]
            ).TABLE6_PROBLEMS,
        ):
            assert is_legal_gemm(cfg, DType.FP32, trained_gemm_tuner.device)
        assert "KG" in result.text


class TestSec81Runner:
    def test_anatomy_pair(self, trained_gemm_tuner):
        result = run_sec81(tuner=trained_gemm_tuner)
        isaac, cublas = result.data
        assert isaac.label == "ISAAC" and cublas.label == "cuBLAS"
        assert isaac.stats.tflops > 0 and cublas.stats.tflops > 0
        assert "Occupancy" in result.text
