"""Micro-budget smoke runs of the learned-component experiments.

The full-budget versions live in benchmarks/; these verify the runners'
plumbing (data flow, rendering, structured payloads) in seconds.
"""


from repro.harness.experiments import (
    run_fig5,
    run_table1,
    run_table2,
)


class TestTable1Small:
    def test_runs_and_renders(self):
        result = run_table1(
            n_eval=500, n_uniform_eval=5_000, target_accepted=60
        )
        assert result.exp_id == "table1"
        assert "GEMM" in result.text and "CONV" in result.text
        assert len(result.data) == 2
        for row in result.data:
            assert row[1].endswith("%") and row[2].endswith("%")


class TestTable2Small:
    def test_runs_with_two_archs(self, monkeypatch):
        import repro.harness.experiments as ex

        monkeypatch.setattr(ex, "TABLE2_ARCHS", ((64,), (32, 64, 32)))
        monkeypatch.setattr(ex, "TABLE2_NOLOG_ARCHS", ((64,),))
        result = run_table2(n_train=800, n_val=150, epochs=8)
        assert len(result.data) == 2
        arch, n_params, mse, nolog = result.data[0]
        assert arch == (64,)
        assert mse > 0 and nolog is not None
        assert result.data[1][3] is None  # no-log only for selected archs


class TestFig5Small:
    def test_runs(self):
        result = run_fig5(
            sizes=(300, 800), n_val=150, epochs=8, hidden=(16,)
        )
        assert [n for n, _ in result.data] == [300, 800]
        assert all(m > 0 for _, m in result.data)
        assert "Figure 5" in result.text
