"""Tests for the feature encoding (§5.2 log transform)."""

import numpy as np
import pytest

from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import ConvShape, DType, GemmShape
from repro.sampling.features import (
    CONV_FEATURES,
    GEMM_FEATURES,
    conv_design_matrix,
    encode_conv,
    encode_gemm,
    gemm_config_matrix,
    gemm_design_matrix,
    gemm_shape_vector,
)


CFG = GemmConfig(ms=8, ns=4, ml=64, nl=32, u=16, ks=2, kl=2, kg=4,
                 vec=2, db=2)
SHAPE = GemmShape(2560, 16, 2560, DType.FP16, True, False)


class TestGemmFeatures:
    def test_sixteen_features(self):
        """§4: 10 tuning + 6 input parameters, X ⊂ N^16."""
        assert len(GEMM_FEATURES) == 16
        assert encode_gemm(CFG, SHAPE).shape == (16,)

    def test_log_transform_is_log2(self):
        v = encode_gemm(CFG, SHAPE, log=True)
        assert v[0] == 3.0   # ms=8
        assert v[GEMM_FEATURES.index("m")] == pytest.approx(np.log2(2560))

    def test_flags_pass_through(self):
        v = encode_gemm(CFG, SHAPE, log=True)
        assert v[GEMM_FEATURES.index("ta")] == 1.0
        assert v[GEMM_FEATURES.index("tb")] == 0.0

    def test_raw_mode(self):
        v = encode_gemm(CFG, SHAPE, log=False)
        assert v[0] == 8.0
        assert v[GEMM_FEATURES.index("k")] == 2560.0

    def test_dtype_feature_is_size(self):
        raw = gemm_shape_vector(SHAPE, log=False)
        assert raw[3] == 2.0  # fp16 bytes

    def test_config_matrix_rows(self):
        cfgs = [CFG, CFG.with_(ms=2)]
        mat = gemm_config_matrix(cfgs)
        assert mat.shape == (2, 10)
        assert mat[1, 0] == 1.0  # log2(2)

    def test_design_matrix_tiles_shape(self):
        cfgs = [CFG, CFG.with_(ms=2), CFG.with_(nl=64)]
        design = gemm_design_matrix(cfgs, SHAPE)
        assert design.shape == (3, 16)
        # Shape columns identical across rows.
        assert (design[:, 10:] == design[0, 10:]).all()

    def test_encode_consistent_with_design(self):
        design = gemm_design_matrix([CFG], SHAPE)
        np.testing.assert_array_equal(design[0], encode_gemm(CFG, SHAPE))


class TestConvFeatures:
    CCFG = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2, u=8)
    CSHAPE = ConvShape.from_output(n=16, p=7, q=7, k=128, c=832, r=5, s=5)

    def test_feature_count(self):
        assert len(CONV_FEATURES) == 24
        assert encode_conv(self.CCFG, self.CSHAPE).shape == (24,)

    def test_derived_implicit_gemm_extents_present(self):
        v = encode_conv(self.CCFG, self.CSHAPE, log=False)
        assert v[CONV_FEATURES.index("npq")] == 784.0
        assert v[CONV_FEATURES.index("crs")] == 20800.0

    def test_design_matrix(self):
        cfgs = [self.CCFG, self.CCFG.with_(kb=64)]
        design = conv_design_matrix(cfgs, self.CSHAPE)
        assert design.shape == (2, 24)
        assert (design[:, 14:] == design[0, 14:]).all()
