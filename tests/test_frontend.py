"""Tests for the DSL front-end (§9 future-work extension)."""

import numpy as np
import pytest

from repro.core.config import ConvConfig, GemmConfig
from repro.core.frontend import FrontendError, lower, parse
from repro.core.types import ConvShape, DType, GemmShape


class TestParser:
    def test_parse_gemm(self):
        c = parse("C[m,n] = A[m,k] * B[k,n]")
        assert c.out.name == "C" and c.out.indices == ("m", "n")
        assert c.lhs.indices == ("m", "k")
        assert c.rhs.indices == ("k", "n")
        assert c.reduction_indices == ("k",)

    def test_parse_conv(self):
        c = parse("O[k,p,q,n] = I[c,p+r,q+s,n] * F[c,r,s,k]")
        assert c.out.indices == ("k", "p", "q", "n")
        assert "p+r" in c.lhs.indices

    def test_whitespace_tolerant(self):
        c = parse("  C [ m , n ]  =  A [ m , k ]  *  B [ k , n ] ")
        assert c.reduction_indices == ("k",)

    @pytest.mark.parametrize(
        "bad",
        [
            "C[m,n] = A[m,k] + B[k,n]",  # wrong operator
            "C[m,n] = A[m,k]",           # missing operand
            "C[] = A[m,k] * B[k,n]",     # empty index list
            "garbage",
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(FrontendError):
            parse(bad)


class TestGemmLowering:
    DIMS = {"m": 48, "n": 32, "k": 64}

    @pytest.mark.parametrize(
        "lhs,rhs,ta,tb",
        [
            ("A[m,k]", "B[k,n]", False, False),
            ("A[k,m]", "B[k,n]", True, False),
            ("A[m,k]", "B[n,k]", False, True),
            ("A[k,m]", "B[n,k]", True, True),
        ],
    )
    def test_layouts_recognized(self, lhs, rhs, ta, tb):
        op = lower(f"C[m,n] = {lhs} * {rhs}", self.DIMS)
        assert op.kind == "gemm"
        shape: GemmShape = op.shape
        assert (shape.m, shape.n, shape.k) == (48, 32, 64)
        assert (shape.ta, shape.tb) == (ta, tb)

    def test_execute_matches_numpy(self):
        op = lower("C[m,n] = A[k,m] * B[k,n]", self.DIMS)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 48)).astype(np.float32)  # stored K x M
        b = rng.standard_normal((64, 32)).astype(np.float32)
        got = op.execute(a, b)
        np.testing.assert_allclose(
            got, (a.T @ b).astype(np.float32), rtol=1e-4, atol=1e-4
        )

    def test_execute_with_config_uses_tiled_path(self):
        op = lower("C[m,n] = A[m,k] * B[k,n]", self.DIMS)
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, kg=2)
        rng = np.random.default_rng(1)
        a = rng.standard_normal((48, 64))
        b = rng.standard_normal((64, 32))
        np.testing.assert_allclose(
            op.execute(a, b, cfg), a @ b, rtol=1e-8, atol=1e-8
        )

    def test_unbound_dimension_rejected(self):
        with pytest.raises(FrontendError, match="not bound"):
            lower("C[m,n] = A[m,k] * B[k,n]", {"m": 4, "n": 4})

    def test_dtype_propagates(self):
        op = lower(
            "C[m,n] = A[m,k] * B[k,n]", self.DIMS, dtype=DType.FP16
        )
        assert op.shape.dtype is DType.FP16


class TestConvLowering:
    DIMS = {"k": 8, "p": 5, "q": 6, "n": 2, "c": 4, "r": 3, "s": 3}

    def test_recognized(self):
        op = lower(
            "O[k,p,q,n] = I[c,p+r,q+s,n] * F[c,r,s,k]", self.DIMS
        )
        assert op.kind == "conv"
        shape: ConvShape = op.shape
        assert (shape.k, shape.p, shape.q, shape.n) == (8, 5, 6, 2)
        assert (shape.c, shape.r, shape.s) == (4, 3, 3)

    def test_execute_matches_reference(self):
        op = lower(
            "O[k,p,q,n] = I[c,p+r,q+s,n] * F[c,r,s,k]", self.DIMS
        )
        from repro.kernels.conv_ref import conv_reference, make_tensors

        i_t, f_t = make_tensors(op.shape, seed=2)
        np.testing.assert_allclose(
            op.execute(i_t, f_t), conv_reference(i_t, f_t, op.shape),
            rtol=1e-6, atol=1e-6,
        )

    def test_execute_with_config(self):
        op = lower(
            "O[k,p,q,n] = I[c,p+r,q+s,n] * F[c,r,s,k]", self.DIMS
        )
        from repro.kernels.conv_ref import conv_reference, make_tensors

        cfg = ConvConfig(kt=2, pt=1, qt=2, nt=1, kb=4, pb=1, qb=2, nb=2,
                         u=4, cg=2)
        i_t, f_t = make_tensors(op.shape, seed=3)
        np.testing.assert_allclose(
            op.execute(i_t, f_t, cfg),
            conv_reference(i_t, f_t, op.shape),
            rtol=1e-6, atol=1e-6,
        )

    def test_mismatched_filter_indices_rejected(self):
        with pytest.raises(FrontendError):
            lower(
                "O[k,p,q,n] = I[c,p+r,q+s,n] * F[r,c,s,k]", self.DIMS
            )


class TestUnrecognized:
    def test_three_way_contraction_rejected(self):
        with pytest.raises(FrontendError, match="unrecognized"):
            lower(
                "C[m] = A[m,k] * B[k,j]",
                {"m": 4, "k": 4, "j": 4},
            )
