"""Tests for the GEMM kernel generator's instruction accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_gemm
from repro.core.types import DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.ptx.gemm_codegen import (
    GemmKernel,
    coalescing_multiplier,
    uses_packed_fp16,
)

from tests.test_legality import gemm_configs


def _kernel(cfg, shape, device=GTX_980_TI, **kw) -> GemmKernel:
    return GemmKernel(cfg=cfg, shape=shape, device=device, **kw)


class TestFmaAccounting:
    def test_total_fma_equals_padded_volume(self, good_gemm_cfg):
        """Every (m, n, k) of the padded tile volume is one FMA."""
        shape = GemmShape(128, 128, 512, DType.FP32, False, True)
        counts = _kernel(good_gemm_cfg, shape).kernel_counts()
        total_fma = counts.block.fma * counts.grid_size
        # exact tiling: padded volume == M*N*K
        assert total_fma == 128 * 128 * 512

    def test_split_configs_preserve_fma_total(self, square_shape):
        """KL/KG splits redistribute but do not change main-loop FMAs
        (up to the small KL merge adds)."""
        base = GemmConfig(ms=4, ns=4, ml=32, nl=32, u=8, vec=1, db=1)
        split = base.with_(kl=2, kg=2)
        c0 = _kernel(base, square_shape).kernel_counts()
        c1 = _kernel(split, square_shape).kernel_counts()
        f0 = c0.block.fma * c0.grid_size
        f1 = c1.block.fma * c1.grid_size
        assert f1 >= f0
        assert (f1 - f0) / f0 < 0.01

    def test_packed_fp16_halves_fma_instructions(self):
        shape16 = GemmShape(128, 128, 512, DType.FP16, False, True)
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)
        packed = _kernel(cfg, shape16, TESLA_P100).block_counts()
        unpacked = _kernel(
            cfg, shape16, TESLA_P100, allow_fp16x2=False
        ).block_counts()
        assert packed.fma * 2 == unpacked.fma
        assert packed.flops == unpacked.flops  # FLOPs conserved

    def test_no_packed_fp16_on_maxwell(self):
        shape16 = GemmShape(128, 128, 512, DType.FP16, False, True)
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)
        assert not _kernel(cfg, shape16, GTX_980_TI).packed
        assert not uses_packed_fp16(cfg, shape16, GTX_980_TI)


class TestTrafficAccounting:
    def test_ideal_bytes_match_operand_tiles(self, good_gemm_cfg):
        shape = GemmShape(256, 256, 1024, DType.FP32, False, True)
        block = _kernel(good_gemm_cfg, shape).block_counts()
        kb = 1024  # kg=1
        expected = (good_gemm_cfg.ml + good_gemm_cfg.nl) * kb * 4
        assert block.ideal_ldg_bytes == expected

    def test_coalesced_traffic_never_below_ideal(self, good_gemm_cfg):
        for ta in (False, True):
            for tb in (False, True):
                shape = GemmShape(256, 256, 1024, DType.FP32, ta, tb)
                block = _kernel(good_gemm_cfg, shape).block_counts()
                assert block.ldg_bytes >= block.ideal_ldg_bytes

    def test_kg_split_doubles_store_traffic(self, deep_shape):
        cfg = GemmConfig(ms=4, ns=4, ml=32, nl=32, u=8, vec=1, db=1)
        plain = _kernel(cfg, deep_shape).block_counts()
        split = _kernel(cfg.with_(kg=8), deep_shape).block_counts()
        assert split.st_bytes == 2 * plain.st_bytes
        assert split.atom > 0 and plain.atom == 0

    def test_coalescing_multiplier_bounds(self):
        for run in (1, 2, 4, 8, 32, 256):
            for dt in DType:
                m = coalescing_multiplier(run, dt, GTX_980_TI)
                assert 1.0 <= m <= GTX_980_TI.coalesce_penalty

    def test_full_run_is_free(self):
        assert coalescing_multiplier(64, DType.FP32, GTX_980_TI) == 1.0


class TestBoundsModes:
    def test_padded_mode_rounds_shape_up(self, good_gemm_cfg):
        shape = GemmShape(100, 100, 64, DType.FP32)
        k = _kernel(good_gemm_cfg, shape, bounds_mode="padded")
        eff = k.effective_shape
        assert eff.m == 128 and eff.n == 128 and eff.k == 64

    def test_predicated_mode_keeps_shape(self, good_gemm_cfg):
        shape = GemmShape(100, 100, 64, DType.FP32)
        k = _kernel(good_gemm_cfg, shape, bounds_mode="predicated")
        assert k.effective_shape == shape

    def test_checked_mode_costs_more_instructions(self, good_gemm_cfg,
                                                  square_shape):
        pred = _kernel(good_gemm_cfg, square_shape,
                       bounds_mode="predicated").block_counts()
        chk = _kernel(good_gemm_cfg, square_shape,
                      bounds_mode="checked").block_counts()
        assert chk.iop > pred.iop
        assert chk.ldg >= pred.ldg  # scalarized loads

    def test_unknown_mode_rejected(self, good_gemm_cfg, square_shape):
        with pytest.raises(ValueError, match="bounds mode"):
            _kernel(good_gemm_cfg, square_shape, bounds_mode="yolo")


class TestTransposes:
    def test_tn_layout_needs_both_transposes(self):
        shape = GemmShape(256, 256, 256, DType.FP32, True, False)
        k = _kernel(GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2),
                    shape)
        assert k.needs_transpose_a and k.needs_transpose_b

    def test_nt_layout_needs_none(self):
        shape = GemmShape(256, 256, 256, DType.FP32, False, True)
        k = _kernel(GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2),
                    shape)
        assert not k.needs_transpose_a and not k.needs_transpose_b

    def test_transposes_cost_scalar_smem_stores(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)
        nt = _kernel(cfg, GemmShape(256, 256, 256, DType.FP32, False, True))
        tn = _kernel(cfg, GemmShape(256, 256, 256, DType.FP32, True, False))
        assert tn.block_counts().sts > nt.block_counts().sts


class TestCountsPositivity:
    @given(cfg=gemm_configs())
    @settings(max_examples=150, deadline=None)
    def test_legal_config_counts_well_formed(self, cfg):
        shape = GemmShape(512, 384, 777, DType.FP32, False, False)
        if not is_legal_gemm(cfg, shape.dtype, GTX_980_TI):
            return
        block = _kernel(cfg, shape).block_counts()
        assert block.fma > 0
        assert block.ldg > 0
        assert block.lds > 0
        assert block.bar >= 1
        assert block.ldg_bytes >= block.ideal_ldg_bytes > 0
        assert block.st_bytes > 0
        assert block.mlp >= 1.0 and block.ilp >= 1.0
        assert (block.atom > 0) == (cfg.kg > 1)


class TestNaming:
    def test_name_encodes_dtype_and_tiles(self, good_gemm_cfg):
        shape = GemmShape(64, 64, 64, DType.FP16, False, True)
        name = _kernel(good_gemm_cfg, shape, TESLA_P100).name()
        assert name.startswith("hgemm_nt")
        assert "64x64" in name
