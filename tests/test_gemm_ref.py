"""Functional-correctness tests of the tiled GEMM executor.

These verify the hardware-independent half of the paper's kernel-generation
claim: every legal parameterization — any tile sizes, any reduction splits,
predicated edges — computes the same product as the reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.kernels.gemm_ref import (
    as_stored,
    execute_gemm,
    gemm_reference,
    make_operands,
)
from repro.kernels.tiling import ExecutionTrace, tiled_matmul


def _check(cfg: GemmConfig, shape: GemmShape, seed=0, tol=1e-8):
    a, b = make_operands(shape, seed=seed)
    trace = ExecutionTrace()
    got = execute_gemm(cfg, shape, a, b, trace=trace)
    want = gemm_reference(a, b)
    np.testing.assert_allclose(
        got.astype(np.float64), want.astype(np.float64), atol=tol, rtol=tol
    )
    return trace


class TestExactTiling:
    def test_plain_blocked(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        _check(cfg, GemmShape(64, 48, 32))

    def test_edge_tiles_clipped(self):
        """Predication analogue: M, N not multiples of the block tile."""
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        _check(cfg, GemmShape(37, 19, 23))

    def test_k_not_multiple_of_u(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=8)
        _check(cfg, GemmShape(16, 16, 13))

    @pytest.mark.parametrize("ks", [1, 2, 4])
    def test_ks_chains(self, ks):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, ks=ks)
        _check(cfg, GemmShape(32, 32, 64))

    @pytest.mark.parametrize("kl", [1, 2, 4, 8])
    def test_kl_shared_reduction(self, kl):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, kl=kl)
        trace = _check(cfg, GemmShape(32, 32, 96))
        if kl > 1:
            assert trace.block_reductions > 0

    @pytest.mark.parametrize("kg", [1, 2, 4, 16])
    def test_kg_global_accumulation(self, kg):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, kg=kg)
        trace = _check(cfg, GemmShape(32, 32, 96))
        if kg > 1:
            assert trace.global_accumulations > 0

    def test_all_splits_together(self):
        cfg = GemmConfig(ms=2, ns=4, ml=16, nl=16, u=8, ks=2, kl=2, kg=4)
        _check(cfg, GemmShape(50, 34, 1000))

    def test_kg_exceeding_k_is_harmless(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, kg=16)
        _check(cfg, GemmShape(16, 16, 8))


class TestTrace:
    def test_macs_equal_useful_volume(self):
        """Clipped execution performs exactly M*N*K multiply-accumulates."""
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, kl=2, kg=2)
        shape = GemmShape(37, 19, 100)
        trace = _check(cfg, shape)
        assert trace.macs == shape.m * shape.n * shape.k

    def test_staged_elements_match_tile_walks(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        shape = GemmShape(32, 32, 64)
        trace = _check(cfg, shape)
        # Each of the 2x2 blocks stages its full row/col panel once.
        assert trace.staged_a_elems == 4 * 16 * 64
        assert trace.staged_b_elems == 4 * 16 * 64

    def test_blocks_executed(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, kg=2)
        shape = GemmShape(32, 17, 64)
        trace = _check(cfg, shape)
        assert trace.blocks_executed == 2 * 2 * 2


class TestDtypes:
    def test_fp16_accumulates_in_fp32(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        shape = GemmShape(32, 32, 256, DType.FP16)
        a, b = make_operands(shape, seed=2)
        got = execute_gemm(cfg, shape, a, b)
        want = gemm_reference(a, b)
        assert got.dtype == np.float16
        np.testing.assert_allclose(
            got.astype(np.float64), want.astype(np.float64),
            rtol=2e-2, atol=2e-1,
        )

    def test_fp64(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        shape = GemmShape(24, 24, 48, DType.FP64)
        _check(cfg, shape, tol=1e-12)


class TestStorageLayouts:
    def test_as_stored_transposes_buffers(self):
        shape = GemmShape(8, 12, 16, DType.FP32, True, True)
        a, b = make_operands(shape)
        sa, sb = as_stored(shape, a, b)
        assert sa.shape == (16, 8) and sb.shape == (12, 16)
        np.testing.assert_array_equal(sa.T, a)

    def test_layout_does_not_change_math(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        for ta in (False, True):
            for tb in (False, True):
                _check(cfg, GemmShape(32, 32, 32, DType.FP32, ta, tb))


class TestValidation:
    def test_wrong_operand_shapes_rejected(self):
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        shape = GemmShape(16, 24, 32)
        a, b = make_operands(shape)
        with pytest.raises(ValueError, match="A has shape"):
            execute_gemm(cfg, shape, a.T, b)
        with pytest.raises(ValueError, match="B has shape"):
            execute_gemm(cfg, shape, a, b.T)

    def test_tiled_matmul_rejects_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            tiled_matmul(np.ones((4, 5)), np.ones((6, 4)), ml=4, nl=4, u=2)


@st.composite
def exec_cases(draw):
    """Random (config, shape) pairs with modest sizes."""
    ms = draw(st.sampled_from([1, 2, 4]))
    ns = draw(st.sampled_from([1, 2, 4]))
    ml = ms * draw(st.sampled_from([2, 4, 8]))
    nl = ns * draw(st.sampled_from([2, 4, 8]))
    u = draw(st.sampled_from([1, 2, 4, 8]))
    ks = draw(st.sampled_from([s for s in (1, 2, 4) if s <= u and u % s == 0]))
    cfg = GemmConfig(
        ms=ms, ns=ns, ml=ml, nl=nl, u=u, ks=ks,
        kl=draw(st.sampled_from([1, 2, 4])),
        kg=draw(st.sampled_from([1, 2, 8])),
    )
    shape = GemmShape(
        m=draw(st.integers(1, 70)),
        n=draw(st.integers(1, 70)),
        k=draw(st.integers(1, 120)),
    )
    return cfg, shape


class TestPropertyBased:
    @given(case=exec_cases())
    @settings(max_examples=60, deadline=None)
    def test_any_decomposition_matches_reference(self, case):
        cfg, shape = case
        _check(cfg, shape, seed=5, tol=1e-7)

    @given(case=exec_cases())
    @settings(max_examples=40, deadline=None)
    def test_macs_invariant(self, case):
        cfg, shape = case
        a, b = make_operands(shape, seed=6)
        trace = ExecutionTrace()
        execute_gemm(cfg, shape, a, b, trace=trace)
        assert trace.macs == shape.m * shape.n * shape.k
