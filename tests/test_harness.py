"""Tests for the report renderer, analysis helpers and experiment runners."""

import pytest

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.harness.analysis import (
    anatomy_table,
    kernel_anatomy,
    predication_overhead,
)
from repro.harness.experiments import (
    TABLE2_ARCHS,
    TABLE6_PROBLEMS,
    run_sec83,
    run_table3,
)
from repro.harness.gemm_eval import results_as_series, run_gemm_suite
from repro.harness.report import (
    render_bar_chart,
    render_series,
    render_table,
    speedup_summary,
)
from repro.workloads.gemm_suites import TABLE4_TASKS


class TestReport:
    def test_render_table_aligns(self):
        text = render_table(
            ["name", "value"], [["a", 1.0], ["bbbb", 22.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_series_layout(self):
        text = render_series(
            "x", [1, 2], {"s1": [0.5, 1.5], "s2": [2.0, 3.0]}, unit="TF"
        )
        assert "s1 (TF)" in text and "s2 (TF)" in text
        assert text.count("\n") == 3

    def test_render_bar_chart_scales(self):
        text = render_bar_chart(["a"], {"s": [10.0]}, width=10)
        assert "#" * 10 in text

    def test_speedup_summary_geomean(self):
        text = speedup_summary(["t1", "t2"], [2.0, 8.0], [1.0, 2.0])
        assert "geomean: 2.83x" in text


class TestAnalysis:
    CFG = GemmConfig(ms=4, ns=8, ml=64, nl=32, u=8, vec=4, db=2)
    SHAPE = GemmShape(2560, 32, 2560, DType.FP32, False, False)

    def test_kernel_anatomy_rows(self):
        a = kernel_anatomy(TESLA_P100, self.SHAPE, self.CFG, "X")
        names = [n for n, _ in a.rows()]
        assert names == [
            "TFLOPS", "ML", "NL", "KL", "U", "Shared Memory",
            "Registers Count", "Occupancy", "L2 hit rate",
        ]

    def test_anatomy_table_side_by_side(self):
        a = kernel_anatomy(TESLA_P100, self.SHAPE, self.CFG, "ISAAC")
        b = kernel_anatomy(
            TESLA_P100, self.SHAPE,
            GemmConfig(ms=8, ns=8, ml=128, nl=64, u=8, vec=4, db=2),
            "cuBLAS",
        )
        headers, rows = anatomy_table([a, b])
        assert headers == ["", "ISAAC", "cuBLAS"]
        assert all(len(r) == 3 for r in rows)

    def test_predication_ordering(self):
        """§8.3 must hold as an inequality chain: predicated ≈ free,
        checked pays double-digit percent."""
        res = predication_overhead(
            GTX_980_TI, GemmShape(1000, 1000, 1000, DType.FP32, False, True),
            self.CFG,
        )
        assert res.predicated_overhead < 0.05
        assert res.checked_overhead > 0.08
        assert res.predicated_overhead < res.checked_overhead


class TestExperimentRunners:
    def test_table3_text(self):
        result = run_table3()
        assert "GTX 980 TI" in result.text
        assert "Tesla P100" in result.text
        assert "HBM2" in result.text

    def test_sec83_runs(self):
        result = run_sec83()
        assert "predication" in result.text.lower()
        assert len(result.data) == 3

    def test_table2_arch_list_matches_paper(self):
        assert TABLE2_ARCHS[0] == (64,)
        assert TABLE2_ARCHS[-1] == (64, 128, 192, 256, 192, 128, 64)
        assert len(TABLE2_ARCHS) == 7

    def test_table6_problem_list(self):
        labels = [l for l, _ in TABLE6_PROBLEMS]
        assert len(labels) == 10
        assert labels[0] == "LINPACK (512)"
        # DeepBench-B rows are TN layout.
        shape = dict(TABLE6_PROBLEMS)["DeepBench-B (16)"]
        assert shape.ta and not shape.tb


class TestGemmEvalHarness:
    def test_run_suite_on_subset(self, trained_gemm_tuner):
        tasks = [t for t in TABLE4_TASKS if t.label in ("512", "16")][:3]
        results = run_gemm_suite(trained_gemm_tuner, tasks, k=40, reps=2)
        assert len(results) == len(tasks)
        for r in results:
            assert r.isaac_tflops > 0
            assert r.cublas_heuristic_tflops > 0
            assert r.cublas_best_tflops >= r.cublas_heuristic_tflops * 0.95
            assert r.speedup_vs_heuristic == pytest.approx(
                r.isaac_tflops / r.cublas_heuristic_tflops
            )

    def test_series_layout(self, trained_gemm_tuner):
        tasks = [t for t in TABLE4_TASKS if t.label == "512"]
        results = run_gemm_suite(trained_gemm_tuner, tasks, k=30, reps=2)
        labels, series = results_as_series(results)
        assert labels == ["LINPACK 512"]
        assert set(series) == {
            "ISAAC", "cuBLAS (Heuristics)", "cuBLAS (Best Kernel)"
        }

    def test_untuned_tuner_rejected(self):
        from repro.core.tuner import Isaac

        with pytest.raises(RuntimeError):
            run_gemm_suite(Isaac(TESLA_P100), TABLE4_TASKS[:1])
