"""Tests for exhaustive search, top-k re-ranking and CONV candidates."""

import numpy as np
import pytest

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_conv, is_legal_gemm
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.gpu.simulator import benchmark_gemm
from repro.inference.conv_search import (
    conv_candidates,
    conv_config_from_gemm,
    factorize_tile,
)
from repro.inference.search import ExhaustiveSearch, legal_configs
from repro.inference.topk import best_after_rerank, rerank
from repro.mlp.crossval import fit_regressor
from repro.sampling.dataset import generate_gemm_dataset


class TestLegalConfigs:
    def test_tiny_space_enumeration(self, tiny_space):
        configs, matrix = legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        assert len(configs) > 10
        assert matrix.shape == (len(configs), 10)
        assert all(
            is_legal_gemm(c, DType.FP32, GTX_980_TI) for c in configs[:50]
        )

    def test_cache_returns_same_object(self, tiny_space):
        a = legal_configs(GTX_980_TI, DType.FP32, "gemm", tiny_space)
        b = legal_configs(GTX_980_TI, DType.FP32, "gemm", tiny_space)
        assert a[0] is b[0]

    def test_conv_requires_per_shape_path(self):
        with pytest.raises(ValueError, match="CONV"):
            legal_configs(GTX_980_TI, DType.FP32, "conv")


@pytest.fixture(scope="module")
def tiny_fit():
    """A quick regressor trained on the tiny space for search tests."""
    rng = np.random.default_rng(3)
    from repro.sampling.dataset import fit_generative_models

    samplers = fit_generative_models(
        TESLA_P100, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=200,
    )
    ds = generate_gemm_dataset(
        TESLA_P100, 5000, rng, samplers=samplers, dtypes=(DType.FP32,)
    )
    tr_x, tr_y = ds.x[:4500], ds.y[:4500]
    va_x, va_y = ds.x[4500:], ds.y[4500:]
    return fit_regressor(
        tr_x, tr_y, va_x, va_y, hidden=(32, 64, 32), epochs=40
    )


class TestExhaustiveSearch:
    def test_top_k_sorted_and_sized(self, tiny_fit, tiny_space):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(1024, 1024, 1024, DType.FP32, False, True)
        top = search.top_k(shape, k=20)
        assert len(top) == 20
        preds = [t.predicted_tflops for t in top]
        assert preds == sorted(preds, reverse=True)
        assert all(p > 0 for p in preds)

    def test_model_ranking_beats_random(self, tiny_fit, tiny_space, rng):
        """The model's top pick should outperform the median random legal
        config by a wide margin — the whole point of the system."""
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(2560, 16, 2560, DType.FP32, False, False)
        top = search.top_k(shape, k=10)
        best_measured = max(
            benchmark_gemm(TESLA_P100, t.config, shape) for t in top
        )
        configs, _ = legal_configs(TESLA_P100, DType.FP32, "gemm", tiny_space)
        sample = [configs[i] for i in rng.integers(len(configs), size=30)]
        random_measured = np.median(
            [benchmark_gemm(TESLA_P100, c, shape) for c in sample]
        )
        assert best_measured > random_measured

    def test_rejects_unknown_op(self, tiny_fit):
        with pytest.raises(ValueError):
            ExhaustiveSearch(tiny_fit, TESLA_P100, "sort")


class TestRerank:
    def test_rerank_orders_by_measured(self, tiny_fit, tiny_space):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(512, 512, 4096, DType.FP32, False, True)
        ranked = rerank(TESLA_P100, shape, search.top_k(shape, 10))
        measured = [r.measured_tflops for r in ranked]
        assert measured == sorted(measured, reverse=True)

    def test_best_is_first(self, tiny_fit, tiny_space):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(512, 512, 4096, DType.FP32, False, True)
        cands = search.top_k(shape, 10)
        best = best_after_rerank(TESLA_P100, shape, cands)
        assert best.measured_tflops == max(
            r.measured_tflops for r in rerank(TESLA_P100, shape, cands)
        )

    def test_rerank_beats_model_argmax_on_average(self, tiny_fit, tiny_space):
        """§6: re-evaluating the top-k on the device smooths model noise."""
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        reordered = 0
        shapes = [
            GemmShape(512, 512, 512, DType.FP32, False, True),
            GemmShape(2560, 16, 2560, DType.FP32, False, False),
            GemmShape(64, 64, 30000, DType.FP32, False, True),
            GemmShape(1024, 256, 1024, DType.FP32, True, False),
        ]
        for shape in shapes:
            cands = search.top_k(shape, 15)
            argmax_measured = benchmark_gemm(
                TESLA_P100, cands[0].config, shape, reps=3
            )
            ranked = rerank(TESLA_P100, shape, cands, reps=3)
            # The device winner is never worse than the model's argmax...
            assert ranked[0].measured_tflops >= argmax_measured * 0.999
            # ...and measured order disagrees with predicted order somewhere
            # (the disagreement is exactly what re-ranking corrects).
            predicted_order = [id(c.config) for c in cands]
            measured_order = [id(r.config) for r in ranked]
            if predicted_order != measured_order:
                reordered += 1
        assert reordered >= 1


class TestConvFactorization:
    SHAPE = ConvShape.from_output(n=4, p=14, q=14, k=64, c=128, r=3, s=3)

    def test_factorize_products_preserved(self):
        out = factorize_tile(64, 8, self.SHAPE)
        assert out is not None
        nb, pb, qb, nt, pt, qt = out
        assert nb * pb * qb == 64
        assert nt * pt * qt == 8
        assert nt <= nb and pt <= pb and qt <= qb

    def test_batch_first(self):
        nb, *_ = factorize_tile(64, 4, self.SHAPE)
        assert nb == 4  # covers the whole batch before spatial dims

    def test_small_batch_not_overpadded(self):
        shape = ConvShape.from_output(n=1, p=32, q=32, k=64, c=64, r=3, s=3)
        nb, pb, qb, *_ = factorize_tile(128, 8, shape)
        assert nb == 1

    def test_conv_config_from_gemm_legal_tiles(self):
        g = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2)
        cfg = conv_config_from_gemm(g, self.SHAPE)
        assert cfg is not None
        assert cfg.block_m == 64 and cfg.block_n == 64
        assert cfg.threads == g.threads

    def test_conv_candidates_all_legal(self):
        cands = conv_candidates(GTX_980_TI, self.SHAPE, max_candidates=500)
        assert len(cands) > 50
        assert all(
            is_legal_conv(c, DType.FP32, GTX_980_TI) for c in cands[:100]
        )

    def test_conv_candidates_unique(self):
        cands = conv_candidates(GTX_980_TI, self.SHAPE, max_candidates=300)
        keys = {tuple(c.as_dict().values()) for c in cands}
        assert len(keys) == len(cands)
