"""Tests for exhaustive search, top-k re-ranking and CONV candidates."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_conv, is_legal_gemm
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.gpu.simulator import benchmark_gemm
from repro.inference.conv_search import (
    conv_bucket_key,
    conv_candidates,
    conv_candidates_batch,
    conv_config_from_gemm,
    factorize_tile,
)
from repro.inference.search import (
    ExhaustiveSearch,
    legal_configs,
    legal_configs_reference,
)
from repro.inference.topk import best_after_rerank, rerank
from repro.mlp.crossval import fit_regressor
from repro.sampling.dataset import generate_gemm_dataset


class TestLegalConfigs:
    def test_tiny_space_enumeration(self, tiny_space):
        configs, matrix = legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        assert len(configs) > 10
        assert matrix.shape == (len(configs), 10)
        assert all(
            is_legal_gemm(c, DType.FP32, GTX_980_TI) for c in configs[:50]
        )

    def test_cache_returns_same_object(self, tiny_space):
        a = legal_configs(GTX_980_TI, DType.FP32, "gemm", tiny_space)
        b = legal_configs(GTX_980_TI, DType.FP32, "gemm", tiny_space)
        assert a[0] is b[0]

    def test_conv_requires_per_shape_path(self):
        with pytest.raises(ValueError, match="CONV"):
            legal_configs(GTX_980_TI, DType.FP32, "conv")

    def test_vectorized_matches_scalar_reference(self, tiny_space):
        """Grid + legal_mask must equal the point-by-point walk, bit for
        bit and in identical (iter_points) order."""
        configs, matrix = legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        ref_configs, ref_matrix = legal_configs_reference(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        assert configs == ref_configs
        assert np.array_equal(matrix, ref_matrix)

    def test_concurrent_enumeration_builds_once(self, tiny_space,
                                                monkeypatch):
        """Racing threads on one cold key elect a single enumerator."""
        import repro.inference.search as search

        search.clear_cache()
        calls: list[int] = []
        barrier = threading.Barrier(6)
        orig = search._enumerate_record

        def counting(spec, device, dtype, space):
            calls.append(1)
            return orig(spec, device, dtype, space)

        monkeypatch.setattr(search, "_enumerate_record", counting)

        def query():
            barrier.wait()
            return search.legal_configs(
                GTX_980_TI, DType.FP32, "gemm", tiny_space
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = [f.result() for f in
                       [pool.submit(query) for _ in range(6)]]
        assert len(calls) == 1
        assert all(r[0] is results[0][0] for r in results)
        search.clear_cache()


@pytest.fixture(scope="module")
def tiny_fit():
    """A quick regressor trained on the tiny space for search tests."""
    rng = np.random.default_rng(3)
    from repro.sampling.dataset import fit_generative_models

    samplers = fit_generative_models(
        TESLA_P100, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=200,
    )
    ds = generate_gemm_dataset(
        TESLA_P100, 5000, rng, samplers=samplers, dtypes=(DType.FP32,)
    )
    tr_x, tr_y = ds.x[:4500], ds.y[:4500]
    va_x, va_y = ds.x[4500:], ds.y[4500:]
    return fit_regressor(
        tr_x, tr_y, va_x, va_y, hidden=(32, 64, 32), epochs=40
    )


class TestExhaustiveSearch:
    def test_top_k_sorted_and_sized(self, tiny_fit, tiny_space):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(1024, 1024, 1024, DType.FP32, False, True)
        top = search.top_k(shape, k=20)
        assert len(top) == 20
        preds = [t.predicted_tflops for t in top]
        assert preds == sorted(preds, reverse=True)
        assert all(p > 0 for p in preds)

    def test_model_ranking_beats_random(self, tiny_fit, tiny_space, rng):
        """The model's top pick should outperform the median random legal
        config by a wide margin — the whole point of the system."""
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(2560, 16, 2560, DType.FP32, False, False)
        top = search.top_k(shape, k=10)
        best_measured = max(
            benchmark_gemm(TESLA_P100, t.config, shape) for t in top
        )
        configs, _ = legal_configs(TESLA_P100, DType.FP32, "gemm", tiny_space)
        sample = [configs[i] for i in rng.integers(len(configs), size=30)]
        random_measured = np.median(
            [benchmark_gemm(TESLA_P100, c, shape) for c in sample]
        )
        assert best_measured > random_measured

    def test_rejects_unknown_op(self, tiny_fit):
        with pytest.raises(ValueError):
            ExhaustiveSearch(tiny_fit, TESLA_P100, "sort")


class TestRerank:
    def test_rerank_orders_by_measured(self, tiny_fit, tiny_space):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(512, 512, 4096, DType.FP32, False, True)
        ranked = rerank(TESLA_P100, shape, search.top_k(shape, 10))
        measured = [r.measured_tflops for r in ranked]
        assert measured == sorted(measured, reverse=True)

    def test_best_is_first(self, tiny_fit, tiny_space):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        shape = GemmShape(512, 512, 4096, DType.FP32, False, True)
        cands = search.top_k(shape, 10)
        best = best_after_rerank(TESLA_P100, shape, cands)
        assert best.measured_tflops == max(
            r.measured_tflops for r in rerank(TESLA_P100, shape, cands)
        )

    def test_rerank_beats_model_argmax_on_average(self, tiny_fit, tiny_space):
        """§6: re-evaluating the top-k on the device smooths model noise."""
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=tiny_space
        )
        reordered = 0
        shapes = [
            GemmShape(512, 512, 512, DType.FP32, False, True),
            GemmShape(2560, 16, 2560, DType.FP32, False, False),
            GemmShape(64, 64, 30000, DType.FP32, False, True),
            GemmShape(1024, 256, 1024, DType.FP32, True, False),
        ]
        for shape in shapes:
            cands = search.top_k(shape, 15)
            argmax_measured = benchmark_gemm(
                TESLA_P100, cands[0].config, shape, reps=3
            )
            ranked = rerank(TESLA_P100, shape, cands, reps=3)
            # The device winner is never worse than the model's argmax...
            assert ranked[0].measured_tflops >= argmax_measured * 0.999
            # ...and measured order disagrees with predicted order somewhere
            # (the disagreement is exactly what re-ranking corrects).
            predicted_order = [id(c.config) for c in cands]
            measured_order = [id(r.config) for r in ranked]
            if predicted_order != measured_order:
                reordered += 1
        assert reordered >= 1


class TestConvFactorization:
    SHAPE = ConvShape.from_output(n=4, p=14, q=14, k=64, c=128, r=3, s=3)

    def test_factorize_products_preserved(self):
        out = factorize_tile(64, 8, self.SHAPE)
        assert out is not None
        nb, pb, qb, nt, pt, qt = out
        assert nb * pb * qb == 64
        assert nt * pt * qt == 8
        assert nt <= nb and pt <= pb and qt <= qb

    def test_batch_first(self):
        nb, *_ = factorize_tile(64, 4, self.SHAPE)
        assert nb == 4  # covers the whole batch before spatial dims

    def test_small_batch_not_overpadded(self):
        shape = ConvShape.from_output(n=1, p=32, q=32, k=64, c=64, r=3, s=3)
        nb, pb, qb, *_ = factorize_tile(128, 8, shape)
        assert nb == 1

    def test_conv_config_from_gemm_legal_tiles(self):
        g = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2)
        cfg = conv_config_from_gemm(g, self.SHAPE)
        assert cfg is not None
        assert cfg.block_m == 64 and cfg.block_n == 64
        assert cfg.threads == g.threads

    def test_conv_candidates_all_legal(self):
        cands = conv_candidates(GTX_980_TI, self.SHAPE, max_candidates=500)
        assert len(cands) > 50
        assert all(
            is_legal_conv(c, DType.FP32, GTX_980_TI) for c in cands[:100]
        )

    def test_conv_candidates_unique(self):
        cands = conv_candidates(GTX_980_TI, self.SHAPE, max_candidates=300)
        keys = {tuple(c.as_dict().values()) for c in cands}
        assert len(keys) == len(cands)


class TestConvBuckets:
    """The vectorized CONV supply and its pow2-bucket cache."""

    SHAPE = ConvShape.from_output(n=4, p=14, q=14, k=64, c=128, r=3, s=3)

    def test_batch_matches_scalar_bit_for_bit(self):
        from repro.inference.conv_search import clear_bucket_cache
        from repro.sampling.features import conv_config_matrix

        clear_bucket_cache()
        batch_cfgs, batch_mat = conv_candidates_batch(
            GTX_980_TI, self.SHAPE
        )
        scalar_cfgs = conv_candidates(GTX_980_TI, self.SHAPE)
        assert batch_cfgs == scalar_cfgs
        assert np.array_equal(
            batch_mat, conv_config_matrix(scalar_cfgs, log=True)
        )

    def test_key_reads_pow2_extents_and_dtype_only(self):
        # Same next_pow2(n) / next_pow2(q): p, k, c, r, s are free.
        a = ConvShape.from_output(n=4, p=14, q=14, k=64, c=128, r=3, s=3)
        b = ConvShape.from_output(n=3, p=64, q=16, k=32, c=16, r=1, s=1)
        assert conv_bucket_key(GTX_980_TI, a) == conv_bucket_key(
            GTX_980_TI, b
        )
        for other in (
            ConvShape.from_output(n=8, p=14, q=14, k=64, c=128, r=3, s=3),
            ConvShape.from_output(n=4, p=14, q=32, k=64, c=128, r=3, s=3),
            ConvShape.from_output(
                n=4, p=14, q=14, k=64, c=128, r=3, s=3, dtype=DType.FP16
            ),
        ):
            assert conv_bucket_key(GTX_980_TI, other) != conv_bucket_key(
                GTX_980_TI, a
            )
        assert conv_bucket_key(TESLA_P100, a) != conv_bucket_key(
            GTX_980_TI, a
        )

    def test_same_bucket_shares_candidate_set(self):
        same = ConvShape.from_output(n=3, p=20, q=13, k=32, c=64, r=3, s=3)
        first, _ = conv_candidates_batch(GTX_980_TI, self.SHAPE)
        second, _ = conv_candidates_batch(GTX_980_TI, same)
        assert second is first  # cache hit, not a regeneration

    def test_different_buckets_generate_independently(self):
        bigger_n = ConvShape.from_output(
            n=32, p=14, q=14, k=64, c=128, r=3, s=3
        )
        a, _ = conv_candidates_batch(GTX_980_TI, self.SHAPE)
        b, _ = conv_candidates_batch(GTX_980_TI, bigger_n)
        assert a is not b
        # A different batch extent really changes the factorization.
        assert a != b

    def test_cached_equals_freshly_generated(self):
        from repro.inference.conv_search import clear_bucket_cache

        cached, cached_mat = conv_candidates_batch(GTX_980_TI, self.SHAPE)
        clear_bucket_cache()
        fresh, fresh_mat = conv_candidates_batch(GTX_980_TI, self.SHAPE)
        assert cached is not fresh
        assert cached == fresh
        assert np.array_equal(cached_mat, fresh_mat)

    def test_search_groups_bucket_shapes_together(self, tiny_fit):
        """ExhaustiveSearch keys CONV candidate sets by bucket, so shapes
        in one bucket share the candidate set (and its h0 fold)."""
        search = ExhaustiveSearch(tiny_fit, TESLA_P100, "conv")
        same = ConvShape.from_output(n=3, p=9, q=13, k=32, c=64, r=3, s=3)
        a = search.candidates(self.SHAPE)
        b = search.candidates(same)
        assert a[0] is b[0]
