"""Tests for the Volkov-style latency-hiding pipe model."""

import pytest

from repro.core.types import DType
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.gpu.latency import pipe_times
from repro.ptx.counts import BlockCounts


def _counts(**kw) -> BlockCounts:
    defaults = dict(
        fma=100_000,
        iop=5_000,
        ldg=2_000,
        stg=500,
        atom=0,
        lds=10_000,
        sts=2_000,
        bar=100,
        ldg_bytes=1e6,
        ideal_ldg_bytes=1e6,
        st_bytes=1e4,
        flops_per_fma=2,
        mlp=4.0,
        ilp=16.0,
    )
    defaults.update(kw)
    return BlockCounts(**defaults)


class TestPipeTimes:
    def test_compute_heavy_kernel_is_alu_bound(self):
        pipes = pipe_times(GTX_980_TI, _counts(), 4, 32, DType.FP32)
        assert pipes.limiter == "alu"
        assert pipes.cycles > 0

    def test_smem_heavy_kernel_is_ldst_bound(self):
        pipes = pipe_times(
            GTX_980_TI, _counts(fma=1_000, lds=200_000), 4, 32, DType.FP32
        )
        assert pipes.limiter == "ldst"

    def test_more_warps_hide_latency(self):
        """With little parallelism, adding warps reduces cycles; at full
        throughput adding warps changes nothing."""
        starved = pipe_times(
            GTX_980_TI, _counts(ilp=1.0), 1, 2, DType.FP32
        )
        hidden = pipe_times(
            GTX_980_TI, _counts(ilp=1.0), 8, 32, DType.FP32
        )
        per_block_starved = starved.cycles / 1
        per_block_hidden = hidden.cycles / 8
        assert per_block_hidden < per_block_starved

    def test_ilp_substitutes_for_occupancy(self):
        """The paper's §3.2 trade-off: few warps need high per-thread ILP."""
        low_ilp = pipe_times(GTX_980_TI, _counts(ilp=1.0), 1, 4, DType.FP32)
        high_ilp = pipe_times(GTX_980_TI, _counts(ilp=32.0), 1, 4, DType.FP32)
        assert high_ilp.cycles < low_ilp.cycles

    def test_fp64_slower_on_consumer_card(self):
        fp32 = pipe_times(GTX_980_TI, _counts(), 4, 32, DType.FP32)
        fp64 = pipe_times(GTX_980_TI, _counts(), 4, 32, DType.FP64)
        assert fp64.alu_cycles > 10 * fp32.alu_cycles

    def test_packed_fp16_runs_at_fp32_instruction_rate(self):
        packed = pipe_times(
            TESLA_P100, _counts(flops_per_fma=4), 4, 32, DType.FP16
        )
        fp32 = pipe_times(TESLA_P100, _counts(), 4, 32, DType.FP32)
        assert packed.alu_cycles == pytest.approx(fp32.alu_cycles, rel=0.01)

    def test_atomics_cost_more_than_stores(self):
        plain = pipe_times(
            GTX_980_TI, _counts(stg=5_000, atom=0), 4, 32, DType.FP32
        )
        atomic = pipe_times(
            GTX_980_TI, _counts(stg=0, atom=5_000), 4, 32, DType.FP32
        )
        assert atomic.ldst_cycles > plain.ldst_cycles

    def test_barrier_cost_scales_with_count(self):
        few = pipe_times(GTX_980_TI, _counts(bar=10), 4, 32, DType.FP32)
        many = pipe_times(GTX_980_TI, _counts(bar=1000), 4, 32, DType.FP32)
        assert many.barrier_cycles > few.barrier_cycles

    def test_cycles_are_max_of_pipes_plus_barriers(self):
        pipes = pipe_times(GTX_980_TI, _counts(), 4, 32, DType.FP32)
        assert pipes.cycles == pytest.approx(
            max(pipes.alu_cycles, pipes.ldst_cycles, pipes.issue_cycles)
            + pipes.barrier_cycles
        )
