"""Unit and property tests for repro.core.legality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ConvConfig, GemmConfig
from repro.core.legality import (
    conv_resources,
    conv_violations,
    gemm_resources,
    gemm_violations,
    is_legal_conv,
    is_legal_gemm,
)
from repro.core.space import CONV_SPACE, GEMM_SPACE
from repro.core.types import DType
from repro.gpu.device import GTX_980_TI, TESLA_P100


def gemm_configs() -> st.SearchStrategy[GemmConfig]:
    """Random points of X̂ (not necessarily legal)."""
    draws = {
        name: st.sampled_from(vals) for name, vals in GEMM_SPACE.params
    }
    return st.builds(GemmConfig, **draws)


def conv_configs() -> st.SearchStrategy[ConvConfig]:
    draws = {
        name: st.sampled_from(vals) for name, vals in CONV_SPACE.params
    }
    return st.builds(ConvConfig, **draws)


KNOWN_GOOD = [
    GemmConfig(ms=8, ns=8, ml=128, nl=128, u=8, vec=4, db=2),
    GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2),
    GemmConfig(ms=2, ns=4, ml=64, nl=16, u=16, kg=4, vec=2, db=2),
    GemmConfig(ms=2, ns=4, ml=32, nl=32, u=8, kl=4, kg=32, vec=1, db=2),
]


class TestGemmLegality:
    @pytest.mark.parametrize("cfg", KNOWN_GOOD, ids=lambda c: c.short())
    def test_known_good_configs_legal(self, cfg, device):
        assert gemm_violations(cfg, DType.FP32, device) == []

    def test_indivisible_tile_rejected(self, maxwell):
        cfg = GemmConfig(ms=16, ns=8, ml=8, nl=64, u=8)
        assert any("ML" in v for v in gemm_violations(cfg, DType.FP32, maxwell))

    def test_too_many_threads_rejected(self, maxwell):
        cfg = GemmConfig(ms=1, ns=1, ml=64, nl=64, u=8)
        vs = gemm_violations(cfg, DType.FP32, maxwell)
        assert any("exceeds" in v for v in vs)

    def test_single_warp_rejected(self, maxwell):
        cfg = GemmConfig(ms=16, ns=16, ml=64, nl=64, u=16, vec=4)
        vs = gemm_violations(cfg, DType.FP32, maxwell)
        assert any("below two warps" in v for v in vs)

    def test_vec_exceeding_128bit_rejected_for_fp64(self, maxwell):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)
        assert is_legal_gemm(cfg, DType.FP32, maxwell)
        vs = gemm_violations(cfg, DType.FP64, maxwell)
        assert any("128-bit" in v for v in vs)

    def test_smem_overflow_rejected(self, maxwell):
        cfg = GemmConfig(ms=16, ns=16, ml=256, nl=256, u=16, vec=4, db=2)
        vs = gemm_violations(cfg, DType.FP32, maxwell)
        assert any("shared memory" in v for v in vs)

    def test_ks_must_divide_u(self, maxwell):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=2, ks=4)
        vs = gemm_violations(cfg, DType.FP32, maxwell)
        assert any("KS" in v for v in vs)

    def test_tiny_thread_tile_rejected(self, maxwell):
        cfg = GemmConfig(ms=1, ns=2, ml=16, nl=64, u=8)
        vs = gemm_violations(cfg, DType.FP32, maxwell)
        assert any("ILP" in v for v in vs)

    @given(cfg=gemm_configs())
    @settings(max_examples=300, deadline=None)
    def test_is_legal_iff_no_violations(self, cfg):
        for device in (GTX_980_TI, TESLA_P100):
            assert is_legal_gemm(cfg, DType.FP32, device) == (
                gemm_violations(cfg, DType.FP32, device) == []
            )

    @given(cfg=gemm_configs())
    @settings(max_examples=200, deadline=None)
    def test_legal_configs_fit_on_device(self, cfg):
        """Legality must imply the occupancy calculator finds a slot."""
        from repro.gpu.occupancy import occupancy_for

        for device in (GTX_980_TI, TESLA_P100):
            if is_legal_gemm(cfg, DType.FP32, device):
                res = gemm_resources(cfg, DType.FP32)
                assert occupancy_for(device, res).blocks_per_sm >= 1


class TestGemmResources:
    def test_accumulators_dominate_registers(self):
        small = gemm_resources(
            GemmConfig(ms=2, ns=2, ml=32, nl=32, u=8), DType.FP32
        )
        big = gemm_resources(
            GemmConfig(ms=16, ns=16, ml=64, nl=64, u=8), DType.FP32
        )
        assert big.regs_per_thread - small.regs_per_thread >= 250

    def test_fp64_doubles_accumulator_registers(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        r32 = gemm_resources(cfg, DType.FP32)
        r64 = gemm_resources(cfg, DType.FP64)
        assert r64.regs_per_thread > r32.regs_per_thread

    def test_smem_scales_with_kl(self):
        base = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        r1 = gemm_resources(base, DType.FP32)
        r2 = gemm_resources(base.with_(kl=2), DType.FP32)
        assert r2.smem_bytes > 2 * r1.smem_bytes * 0.9

    def test_double_buffering_doubles_staging(self):
        cfg1 = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, db=1)
        cfg2 = cfg1.with_(db=2)
        assert gemm_resources(cfg2, DType.FP32).smem_bytes == (
            2 * gemm_resources(cfg1, DType.FP32).smem_bytes
        )

    def test_warps_round_up(self):
        res = gemm_resources(GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8),
                             DType.FP32)
        assert res.warps == 2


class TestConvLegality:
    def test_known_good_legal(self, good_conv_cfg, device):
        assert conv_violations(good_conv_cfg, DType.FP32, device) == []

    def test_indivisible_block_rejected(self, maxwell):
        cfg = ConvConfig(kt=4, pt=4, qt=2, nt=1, kb=32, pb=2, qb=4, nb=2, u=8)
        vs = conv_violations(cfg, DType.FP32, maxwell)
        assert any("PB" in v for v in vs)

    def test_table_smem_accounted(self):
        cfg = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2,
                         u=8, cl=2)
        res = conv_resources(cfg, DType.FP32)
        # staging (db=1): (block_m + block_n) * u * cl * 4 bytes
        staging = (32 + 32) * 8 * 2 * 4
        reduction = 32 * 32 * 4
        table = 4 * 8 * 2
        assert res.smem_bytes == staging + reduction + table

    @given(cfg=conv_configs())
    @settings(max_examples=200, deadline=None)
    def test_is_legal_iff_no_violations(self, cfg):
        assert is_legal_conv(cfg, DType.FP32, GTX_980_TI) == (
            conv_violations(cfg, DType.FP32, GTX_980_TI) == []
        )


class TestLegalMaskParity:
    """``OpSpec.legal_mask`` must agree pointwise with scalar ``is_legal``.

    The vectorized candidate enumeration silently depends on this: the
    grid + mask path replaces the point-by-point walk for every
    registered op, so any divergence would change candidate sets.
    """

    @pytest.mark.parametrize("op_name", ["gemm", "conv", "bgemm"])
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mask_matches_scalar_pointwise(self, op_name, data):
        from repro.core.ops import get_op

        spec = get_op(op_name)
        n = data.draw(st.integers(min_value=1, max_value=16))
        points = [
            {
                name: data.draw(st.sampled_from(vals))
                for name, vals in spec.space.params
            }
            for _ in range(n)
        ]
        cols = {
            name: np.array([p[name] for p in points], dtype=np.int64)
            for name in spec.space.names
        }
        for device in (GTX_980_TI, TESLA_P100):
            for dtype in (DType.FP32, DType.FP16):
                mask = spec.legal_mask(device, cols, dtype)
                scalar = [
                    spec.is_legal(spec.config_from_point(p), dtype, device)
                    for p in points
                ]
                assert [bool(m) for m in mask] == scalar
