"""Tests for the L2 reuse / DRAM traffic model."""


from repro.gpu.device import GTX_980_TI
from repro.gpu.memory import estimate_traffic, l2_hit_rate


def _hit(**kw) -> float:
    defaults = dict(
        device=GTX_980_TI,
        grid_m=32,
        grid_n=32,
        concurrent_blocks=176,
        a_bytes_frac=0.5,
        staged_bytes_per_block=8192,
        staged_depth=8,
    )
    defaults.update(kw)
    return l2_hit_rate(**defaults)


class TestL2HitRate:
    def test_single_block_has_no_reuse(self):
        assert _hit(concurrent_blocks=1) == 0.0
        assert _hit(grid_m=1, grid_n=1) == 0.0

    def test_in_unit_interval(self):
        for cb in (1, 4, 64, 4096):
            for gm in (1, 8, 128):
                h = _hit(concurrent_blocks=cb, grid_m=gm)
                assert 0.0 <= h <= 0.98

    def test_more_concurrency_more_reuse(self):
        assert _hit(concurrent_blocks=176) > _hit(concurrent_blocks=4)

    def test_deeper_staging_improves_quality(self):
        # §8.1: larger U -> better cache-hit rate.
        assert _hit(staged_depth=16) > _hit(staged_depth=2)

    def test_oversized_working_set_degrades(self):
        big = _hit(staged_bytes_per_block=256 * 1024)
        small = _hit(staged_bytes_per_block=4 * 1024)
        assert big < small


class TestTrafficEstimate:
    def _traffic(self, **kw):
        defaults = dict(
            device=GTX_980_TI,
            ldg_bytes_per_block=1_000_000.0,
            ideal_ldg_bytes_per_block=800_000.0,
            st_bytes_per_block=16_384.0,
            grid_m=16,
            grid_n=16,
            kg=1,
            concurrent_blocks=176,
            a_bytes_frac=0.5,
            staged_bytes_per_block=8192,
            staged_depth=8,
        )
        defaults.update(kw)
        return estimate_traffic(**defaults)

    def test_loads_filtered_by_hits(self):
        t = self._traffic()
        blocks = 16 * 16
        assert t.dram_load_bytes < 1_000_000.0 * blocks
        assert t.dram_load_bytes >= 800_000.0 * 16  # compulsory floor

    def test_stores_stream_through(self):
        t = self._traffic()
        assert t.dram_store_bytes == 16_384.0 * 256

    def test_kg_blocks_share_nothing(self):
        """KG slices work on disjoint K ranges: per-slice concurrency drops."""
        t1 = self._traffic(kg=1)
        t8 = self._traffic(kg=8)
        assert t8.l2_hit_rate <= t1.l2_hit_rate

    def test_total_is_sum(self):
        t = self._traffic()
        assert t.dram_bytes == t.dram_load_bytes + t.dram_store_bytes
