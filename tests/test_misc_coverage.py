"""Cross-cutting coverage: wave accounting, sampler internals, examples."""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.gpu.device import GTX_980_TI
from repro.gpu.simulator import simulate_gemm
from repro.sampling.dataset import _log_uniform_int


class TestWaveAccounting:
    CFG = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)

    def test_tiny_grid_is_single_partial_wave(self):
        stats = simulate_gemm(
            GTX_980_TI, self.CFG, GemmShape(64, 64, 4096, DType.FP32)
        )
        assert stats.grid_size == 1
        assert stats.waves < 1.0

    def test_wave_count_scales_with_grid(self):
        small = simulate_gemm(
            GTX_980_TI, self.CFG, GemmShape(512, 512, 256, DType.FP32)
        )
        large = simulate_gemm(
            GTX_980_TI, self.CFG, GemmShape(2048, 2048, 256, DType.FP32)
        )
        assert large.waves == pytest.approx(16 * small.waves, rel=1e-6)

    def test_launch_overhead_floors_tiny_kernels(self):
        stats = simulate_gemm(
            GTX_980_TI, self.CFG, GemmShape(64, 64, 16, DType.FP32)
        )
        assert stats.time_ms >= GTX_980_TI.kernel_launch_us * 1e-3


class TestLogUniformInt:
    def test_bounds_respected(self, rng):
        for _ in range(300):
            v = _log_uniform_int(rng, 16, 4096)
            assert 16 <= v <= 4096

    def test_log_uniformity_spreads_octaves(self, rng):
        """Each octave should receive a non-trivial share of samples."""
        lows = sum(
            1 for _ in range(2000) if _log_uniform_int(rng, 16, 4096) < 256
        )
        assert 400 < lows < 1600

    def test_pow2_snapping(self, rng):
        vals = [
            _log_uniform_int(rng, 16, 4096, round_pow2_prob=1.0)
            for _ in range(100)
        ]
        assert all(v & (v - 1) == 0 for v in vals)


class TestSearchConsistency:
    def test_top1_is_argmax_of_predictions(self, trained_gemm_tuner):
        shape = GemmShape(1024, 512, 2048, DType.FP32, False, True)
        search = trained_gemm_tuner._require_tuned()
        preds = search.predictions(shape)
        configs, _ = search.candidates(shape)
        top = search.top_k(shape, k=1)[0]
        assert top.config == configs[int(np.argmax(preds))]


class TestExamplesWellFormed:
    """Every example must at least import and expose main()."""

    EXAMPLES = sorted(
        (Path(__file__).parent.parent / "examples").glob("*.py")
    )

    def test_examples_exist(self):
        assert len(self.EXAMPLES) >= 5

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=lambda p: p.stem
    )
    def test_importable_with_main(self, path):
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(getattr(module, "main", None)), path.name
