"""Tests for the from-scratch MLP: layers, gradients, training dynamics."""

import numpy as np
import pytest

from repro.mlp.layers import ACTIVATIONS, Dense
from repro.mlp.losses import mae, mse, mse_grad
from repro.mlp.network import MLP
from repro.mlp.optimizers import Adam, SGD
from repro.mlp.scaler import StandardScaler, TargetScaler
from repro.mlp.training import train


class TestActivations:
    def test_relu(self):
        act = ACTIVATIONS["relu"]
        z = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(act.fn(z), [0.0, 0.0, 3.0])
        np.testing.assert_array_equal(act.grad(z, act.fn(z)), [0.0, 0.0, 1.0])

    def test_tanh_grad(self):
        act = ACTIVATIONS["tanh"]
        z = np.array([0.5])
        a = act.fn(z)
        assert act.grad(z, a)[0] == pytest.approx(1 - np.tanh(0.5) ** 2)

    def test_unknown_activation_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="unknown activation"):
            Dense(4, 4, "swish", rng)


class TestGradients:
    """Backprop must match numerical differentiation — the canonical check."""

    @pytest.mark.parametrize("activation", ["relu", "tanh"])
    def test_numerical_gradcheck(self, activation):
        rng = np.random.default_rng(42)
        net = MLP(5, (7, 3), activation=activation, seed=1)
        x = rng.standard_normal((12, 5))
        y = rng.standard_normal(12)

        pred = net.forward(x, train=True)
        net.backward(mse_grad(pred, y))
        analytic = [g.copy() for g in net.gradients()]

        eps = 1e-6
        for p_idx, param in enumerate(net.parameters()):
            flat = param.ravel()
            for probe in range(0, flat.size, max(1, flat.size // 5)):
                orig = flat[probe]
                flat[probe] = orig + eps
                lp = mse(net.forward(x), y)
                flat[probe] = orig - eps
                lm = mse(net.forward(x), y)
                flat[probe] = orig
                numeric = (lp - lm) / (2 * eps)
                assert analytic[p_idx].ravel()[probe] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-6
                )

    def test_backward_before_forward_raises(self):
        net = MLP(3, (4,), seed=0)
        with pytest.raises(RuntimeError, match="backward called before"):
            net.backward(np.zeros(2))


class TestMLP:
    def test_param_count(self):
        net = MLP(16, (32, 64, 32), seed=0)
        expected = (16 * 32 + 32) + (32 * 64 + 64) + (64 * 32 + 32) + (32 + 1)
        assert net.n_params == expected

    def test_paper_table2_param_counts(self):
        """Table 2's '#weights' column orders of magnitude must hold for
        our 16-feature input."""
        assert 1_000 <= MLP(16, (64,)).n_params <= 2_000
        assert 8_000 <= MLP(16, (512,)).n_params <= 12_000
        assert 3_000 <= MLP(16, (32, 64, 32)).n_params <= 6_000
        assert 150_000 <= MLP(
            16, (64, 128, 192, 256, 192, 128, 64)
        ).n_params <= 190_000

    def test_forward_shapes(self):
        net = MLP(4, (8,), seed=0)
        assert net.forward(np.zeros((7, 4))).shape == (7,)
        assert net.forward(np.zeros(4)).shape == (1,)

    def test_predict_batched_matches_forward(self):
        net = MLP(4, (8, 8), seed=0)
        x = np.random.default_rng(0).standard_normal((1000, 4))
        np.testing.assert_allclose(
            net.predict(x, batch_size=128), net.forward(x), rtol=1e-12
        )

    def test_weights_round_trip(self):
        a = MLP(4, (8,), seed=0)
        b = MLP(4, (8,), seed=99)
        b.set_weights(a.get_weights())
        x = np.random.default_rng(1).standard_normal((5, 4))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_set_weights_shape_mismatch(self):
        a = MLP(4, (8,), seed=0)
        b = MLP(4, (9,), seed=0)
        with pytest.raises(ValueError):
            a.set_weights(b.get_weights())

    def test_describe(self):
        assert "32, 64, 32" in MLP(16, (32, 64, 32)).describe()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MLP(0, (8,))
        with pytest.raises(ValueError):
            MLP(4, (8, -1))


class TestLosses:
    def test_mse(self):
        assert mse(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == 2.0

    def test_mse_grad_direction(self):
        g = mse_grad(np.array([2.0]), np.array([1.0]))
        assert g[0] > 0

    def test_mae(self):
        assert mae(np.array([1.0, -1.0]), np.zeros(2)) == 1.0


class TestOptimizers:
    def _quadratic_descent(self, opt, steps=200):
        """Minimize ||p||^2 from a fixed start; return final norm."""
        p = np.array([3.0, -2.0])
        for _ in range(steps):
            opt.step([p], [2 * p])
        return np.linalg.norm(p)

    def test_sgd_converges(self):
        assert self._quadratic_descent(SGD(lr=0.1)) < 1e-6

    def test_momentum_converges(self):
        assert self._quadratic_descent(SGD(lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descent(Adam(lr=0.1), steps=400) < 1e-3

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=-1)


class TestScalers:
    def test_standard_scaler_round_trip(self, rng):
        x = rng.standard_normal((100, 5)) * 7 + 3
        s = StandardScaler().fit(x)
        z = s.transform(x)
        assert abs(z.mean()) < 1e-10
        np.testing.assert_allclose(s.inverse_transform(z), x, rtol=1e-10)

    def test_constant_column_safe(self):
        x = np.ones((10, 2))
        z = StandardScaler().fit(x).transform(x)
        assert np.isfinite(z).all()

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            TargetScaler().transform(np.ones(2))

    def test_target_scaler(self, rng):
        y = rng.standard_normal(200) * 4 + 10
        s = TargetScaler().fit(y)
        z = s.transform(y)
        assert abs(z.mean()) < 1e-10 and abs(z.std() - 1) < 1e-10
        np.testing.assert_allclose(s.inverse_transform(z), y, rtol=1e-10)


class TestTraining:
    def test_learns_linear_function(self, rng):
        x = rng.standard_normal((2000, 4))
        y = x @ np.array([1.0, -2.0, 0.5, 3.0])
        net = MLP(4, (32, 32), seed=0)
        hist = train(net, x, y, epochs=60, batch_size=64, seed=0)
        assert hist.final_train_mse < 0.01
        assert hist.train_mse[-1] < hist.train_mse[0] / 50

    def test_early_stopping_restores_best(self, rng):
        x = rng.standard_normal((500, 4))
        y = x.sum(axis=1)
        xv = rng.standard_normal((100, 4))
        yv = xv.sum(axis=1)
        net = MLP(4, (16,), seed=0)
        hist = train(
            net, x, y, epochs=100, x_val=xv, y_val=yv, patience=5, seed=0
        )
        assert hist.best_epoch >= 0
        final = mse(net.predict(xv), yv)
        assert final == pytest.approx(hist.best_val_mse, rel=1e-6)

    def test_rejects_mismatched_data(self):
        net = MLP(4, (8,), seed=0)
        with pytest.raises(ValueError):
            train(net, np.zeros((10, 4)), np.zeros(9))
        with pytest.raises(ValueError):
            train(net, np.zeros((0, 4)), np.zeros(0))

    def test_history_without_val_raises_on_best(self, rng):
        x = rng.standard_normal((64, 4))
        net = MLP(4, (8,), seed=0)
        hist = train(net, x, x.sum(axis=1), epochs=2, seed=0)
        with pytest.raises(ValueError):
            _ = hist.best_val_mse
