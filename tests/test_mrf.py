"""Tests for the pairwise-MRF generative model (§9 future-work extension)."""

import numpy as np
import pytest

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_gemm
from repro.core.space import GEMM_SPACE, ParamSpace, table1_space
from repro.core.types import DType
from repro.gpu.device import GTX_980_TI
from repro.sampling.generative import CategoricalModel
from repro.sampling.mrf import PairwiseMRF


def _accept(point) -> bool:
    return is_legal_gemm(GemmConfig.from_dict(point), DType.FP32, GTX_980_TI)


TOY = ParamSpace("toy", (("a", (1, 2)), ("b", (1, 2))))


class TestPotentials:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            PairwiseMRF(TOY, alpha=0)

    def test_conditional_learns_correlation(self, rng):
        """Feed a perfectly correlated stream: a == b.  The conditional of
        b given a must concentrate on the matching value."""
        mrf = PairwiseMRF(TOY, alpha=0.1)
        for _ in range(200):
            mrf.observe({"a": 1, "b": 1})
            mrf.observe({"a": 2, "b": 2})
        p_b_given_a1 = mrf.conditional("b", {"a": 1})
        assert p_b_given_a1[0] > 0.9
        p_b_given_a2 = mrf.conditional("b", {"a": 2})
        assert p_b_given_a2[1] > 0.9

    def test_independent_data_gives_flat_pairwise(self, rng):
        mrf = PairwiseMRF(TOY, alpha=1.0)
        for _ in range(400):
            mrf.observe({"a": int(rng.choice((1, 2))),
                         "b": int(rng.choice((1, 2)))})
        p1 = mrf.conditional("b", {"a": 1})
        p2 = mrf.conditional("b", {"a": 2})
        np.testing.assert_allclose(p1, p2, atol=0.15)

    def test_conditionals_are_distributions(self, rng):
        mrf = PairwiseMRF(GEMM_SPACE)
        mrf.fit(_accept, rng, target_accepted=150)
        for name in GEMM_SPACE.names:
            p = mrf.conditional(name, {})
            assert p.shape == (len(GEMM_SPACE.values(name)),)
            assert p.sum() == pytest.approx(1.0)
            assert (p >= 0).all()


class TestSampling:
    def test_samples_lie_in_space(self, rng):
        mrf = PairwiseMRF(GEMM_SPACE)
        mrf.fit(_accept, rng, target_accepted=100)
        for _ in range(20):
            assert GEMM_SPACE.contains(mrf.sample(rng))

    def test_sample_legal(self, rng):
        mrf = PairwiseMRF(GEMM_SPACE)
        mrf.fit(_accept, rng, target_accepted=150)
        point = mrf.sample_legal(_accept, rng)
        assert _accept(point)

    def test_mrf_beats_categorical_acceptance(self, rng):
        """The extension's raison d'être: joint modeling must raise
        acceptance above the independence model in the harsh Table-1
        space, where constraints couple parameters strongly."""
        space = table1_space(GEMM_SPACE)
        cat = CategoricalModel(space)
        cat.fit(_accept, rng, target_accepted=400)
        mrf = PairwiseMRF(space)
        mrf.fit(_accept, rng, target_accepted=400)

        n = 1500
        cat_rate = sum(_accept(cat.sample(rng)) for _ in range(n)) / n
        mrf_rate = sum(
            _accept(mrf.sample(rng, sweeps=2)) for _ in range(n)
        ) / n
        assert mrf_rate > cat_rate
