"""Tests for the deterministic measurement-noise model."""

import math
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.noise import averaged_noise_factor, noise_factor


class TestNoiseFactor:
    def test_deterministic(self):
        assert noise_factor("k", 3) == noise_factor("k", 3)

    def test_distinct_reps_differ(self):
        assert noise_factor("k", 0) != noise_factor("k", 1)

    def test_distinct_keys_differ(self):
        assert noise_factor("a") != noise_factor("b")

    def test_zero_sigma_is_exact(self):
        assert noise_factor("k", 0, sigma=0.0) == 1.0

    def test_mean_near_one(self):
        xs = [noise_factor(f"key{i}", 0, sigma=0.05) for i in range(4000)]
        assert statistics.mean(xs) == pytest.approx(1.0, abs=0.01)

    def test_log_std_matches_sigma(self):
        sigma = 0.1
        xs = [
            math.log(noise_factor(f"key{i}", 0, sigma=sigma))
            for i in range(4000)
        ]
        assert statistics.stdev(xs) == pytest.approx(sigma, rel=0.1)

    @given(st.text(max_size=30), st.integers(0, 100))
    @settings(max_examples=200, deadline=None)
    def test_always_positive_and_finite(self, key, rep):
        f = noise_factor(key, rep)
        assert f > 0 and math.isfinite(f)


class TestAveraging:
    def test_averaging_reduces_spread(self):
        """The §6 re-ranking rationale: repetitions shrink noise ~1/sqrt(n)."""
        single = [
            abs(math.log(averaged_noise_factor(f"x{i}", 1, sigma=0.1)))
            for i in range(800)
        ]
        averaged = [
            abs(math.log(averaged_noise_factor(f"x{i}", 16, sigma=0.1)))
            for i in range(800)
        ]
        assert statistics.mean(averaged) < statistics.mean(single) / 2

    def test_reps_one_equals_single(self):
        assert averaged_noise_factor("k", 1) == noise_factor("k", 0)
