"""Tests for the input-oblivious auto-tuner baseline."""

import pytest

from repro.baselines.oblivious import ObliviousTuner
from repro.core.legality import is_legal_gemm
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100


@pytest.fixture(scope="module")
def oblivious():
    tuner = ObliviousTuner(TESLA_P100, sample_size=256, seed=4)
    tuner.tune(DType.FP32)
    return tuner


class TestObliviousTuner:
    def test_frozen_kernel_is_legal(self, oblivious):
        cfg = oblivious.config_for(GemmShape(512, 512, 512))
        assert is_legal_gemm(cfg, DType.FP32, TESLA_P100)

    def test_same_kernel_for_every_shape(self, oblivious):
        a = oblivious.config_for(GemmShape(2048, 2048, 2048))
        b = oblivious.config_for(GemmShape(2560, 16, 2560))
        c = oblivious.config_for(GemmShape(32, 32, 60000))
        assert a == b == c

    def test_good_on_reference_like_shapes(self, oblivious):
        t = oblivious.tflops(
            GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        )
        assert t > 0.6 * TESLA_P100.peak_tflops(DType.FP32)

    def test_poor_off_reference(self, oblivious):
        """The paper's thesis: a square-tuned kernel collapses on deep-K
        covariance shapes."""
        square = oblivious.tflops(
            GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        )
        deep = oblivious.tflops(
            GemmShape(32, 32, 60000, DType.FP32, False, True)
        )
        assert deep < square / 4

    def test_lazy_tune_on_new_dtype(self):
        tuner = ObliviousTuner(TESLA_P100, sample_size=128, seed=1)
        cfg = tuner.config_for(GemmShape(256, 256, 256, DType.FP64))
        assert is_legal_gemm(cfg, DType.FP64, TESLA_P100)
