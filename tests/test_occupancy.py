"""Tests for the occupancy calculator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.legality import ResourceUsage
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.gpu.occupancy import occupancy_for


def _res(threads=256, regs=64, smem=8192) -> ResourceUsage:
    return ResourceUsage(threads=threads, regs_per_thread=regs,
                         smem_bytes=smem)


class TestOccupancy:
    def test_light_kernel_hits_max_threads(self):
        occ = occupancy_for(GTX_980_TI, _res(threads=256, regs=32, smem=1024))
        assert occ.blocks_per_sm == 8
        assert occ.occupancy == pytest.approx(1.0)
        assert occ.limiter == "threads"

    def test_register_pressure_limits(self):
        occ = occupancy_for(GTX_980_TI, _res(threads=256, regs=128, smem=1024))
        # 128 regs * 32 lanes = 4096/warp, 8 warps -> 32768/block -> 2 blocks
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 2
        assert occ.occupancy == pytest.approx(0.25)

    def test_smem_pressure_limits(self):
        occ = occupancy_for(
            TESLA_P100, _res(threads=64, regs=32, smem=20 * 1024)
        )
        assert occ.limiter == "shared memory"
        assert occ.blocks_per_sm == 3  # 64KB / 20KB

    def test_block_cap(self):
        occ = occupancy_for(GTX_980_TI, _res(threads=32, regs=16, smem=256))
        assert occ.blocks_per_sm == 32
        assert occ.limiter == "blocks"

    def test_oversized_kernel_does_not_fit(self):
        occ = occupancy_for(
            GTX_980_TI, _res(threads=1024, regs=255, smem=1024)
        )
        # 255 regs x 32 = 8160 -> rounded 8192/warp x 32 warps = 256k > 64k
        assert occ.blocks_per_sm == 0
        assert not occ.active
        assert occ.limiter == "does not fit"

    def test_warps_count(self):
        occ = occupancy_for(GTX_980_TI, _res(threads=128, regs=40, smem=4096))
        assert occ.warps_per_sm == occ.blocks_per_sm * 4

    @given(
        threads=st.integers(32, 1024).map(lambda t: (t // 32) * 32),
        regs=st.integers(16, 255),
        smem=st.integers(256, 48 * 1024),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_resources(self, threads, regs, smem):
        """Using strictly more of any resource can never raise occupancy."""
        base = occupancy_for(GTX_980_TI, _res(threads, regs, smem))
        more_regs = occupancy_for(GTX_980_TI, _res(threads, min(255, regs + 32), smem))
        more_smem = occupancy_for(GTX_980_TI, _res(threads, regs, smem + 8192))
        assert more_regs.blocks_per_sm <= base.blocks_per_sm
        assert more_smem.blocks_per_sm <= base.blocks_per_sm

    @given(
        threads=st.integers(32, 512).map(lambda t: (t // 32) * 32),
        regs=st.integers(16, 128),
        smem=st.integers(256, 32 * 1024),
    )
    @settings(max_examples=100, deadline=None)
    def test_occupancy_in_unit_interval(self, threads, regs, smem):
        occ = occupancy_for(TESLA_P100, _res(threads, regs, smem))
        assert 0.0 <= occ.occupancy <= 1.0
