"""The online learning loop: replay buffer, fine-tunes, versioned swaps.

Three contracts from the design get pinned here:

* **replayability** — the fine-tuned fit bytes are a pure function of
  the traffic sequence and the pinned :class:`OnlineConfig`; replaying
  the same queries against a fresh engine reproduces every update
  digest bit for bit;
* **atomic hot-swaps** — a search holds the same per-(device, op) lock
  the swap takes, and the swap re-folds the exhaustive searcher inside
  the critical section, so no reader can ever pair new weights with a
  stale prescaled ``H0`` (nor vice versa), even under thread stress;
* **exactly-once finalization** — ``close()`` flushes the buffer into a
  final fine-tune and persists the latest version once, no matter how
  many times it runs.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.mlp.crossval import FitLineage
from repro.inference.topk import RankedKernel
from repro.mlp.serialize import fit_from_bytes, fit_to_bytes
from repro.service.async_engine import AsyncEngine
from repro.service.engine import Engine, KernelRequest
from repro.service.online import (
    OnlineConfig,
    OnlineLearner,
    ReplayBuffer,
    fine_tune_fit,
)

DEVICE = TESLA_P100.name

#: Small cadence + tiny epochs so tests trip several updates in seconds.
CFG = OnlineConfig(update_every=8, epochs=2, anchor_size=64, batch_size=32)


def _fresh_tuner() -> Isaac:
    """A tiny-budget tuner each mutating test can own (hot-swaps mutate
    the live model in place, so the session-scoped fixture is off
    limits here)."""
    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(n_samples=900, seed=7, epochs=8, generative_target=80)
    return tuner


def _shape(m, n=128, k=256, ta=False, tb=True) -> GemmShape:
    return GemmShape(m, n, k, DType.FP32, ta, tb)


def _online_engine(tuner=None, config=CFG, **kwargs) -> Engine:
    engine = Engine(online=config, max_workers=0, **kwargs)
    engine.register(tuner if tuner is not None else _fresh_tuner())
    return engine


# ----------------------------------------------------------------------
# Replay buffer
# ----------------------------------------------------------------------

class TestReplayBuffer:
    def test_bounded_and_counts_everything(self, rng):
        buf = ReplayBuffer(capacity=16, n_features=3, seed=0)
        for i in range(50):
            buf.add(rng.normal(size=3), float(i))
        assert len(buf) == 16
        assert buf.total == 50

    def test_reservoir_is_seed_deterministic(self):
        def fill(seed):
            buf = ReplayBuffer(capacity=8, n_features=2, seed=seed)
            for i in range(40):
                buf.add(np.array([i, -i], dtype=float), float(i))
            return buf.snapshot()

        x1, y1 = fill(seed=3)
        x2, y2 = fill(seed=3)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)
        # A different seed keeps a different reservoir (overwhelmingly).
        _, y3 = fill(seed=4)
        assert not np.array_equal(y1, y3)

    def test_snapshot_is_a_copy(self):
        buf = ReplayBuffer(capacity=4, n_features=1, seed=0)
        buf.add(np.array([1.0]), 1.0)
        x, y = buf.snapshot()
        x[:] = 99.0
        x2, _ = buf.snapshot()
        assert x2[0, 0] == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnlineConfig(buffer_capacity=0)
        with pytest.raises(ValueError):
            OnlineConfig(update_every=0)
        with pytest.raises(ValueError):
            OnlineConfig(epochs=-1)


# ----------------------------------------------------------------------
# Fine-tuning (learner level)
# ----------------------------------------------------------------------

class TestFineTune:
    def test_shares_frozen_scalers_and_sets_lineage(self, trained_gemm_tuner):
        fit = trained_gemm_tuner.fit_result
        ds = trained_gemm_tuner.dataset
        lineage = FitLineage(model_version=1, parent_version=0,
                             n_samples=32, seed=0)
        tuned = fine_tune_fit(
            fit, ds.x[:32], ds.y[:32],
            anchor_x=ds.x[:16], anchor_y=ds.y[:16],
            config=CFG, lineage=lineage,
        )
        assert tuned is not fit and tuned.model is not fit.model
        # The scalers are part of the fit's identity (the folded-search
        # math depends on them): fine-tunes must reuse them verbatim.
        assert tuned.x_scaler is fit.x_scaler
        assert tuned.y_scaler is fit.y_scaler
        assert tuned.model_version == 1
        assert np.isfinite(tuned.val_mse)
        # The base fit's weights were not touched.
        for a, b in zip(fit.model.get_weights(),
                        fit_from_bytes(fit_to_bytes(fit)).model.get_weights()):
            np.testing.assert_array_equal(a, b)

    def test_interval_trigger_uses_injected_clock(self, trained_gemm_tuner):
        cfg = OnlineConfig(update_every=10_000, interval_s=5.0,
                           epochs=1, anchor_size=16)
        learner = OnlineLearner(cfg)
        fit = trained_gemm_tuner.fit_result
        ds = trained_gemm_tuner.dataset
        learner.ensure_registered(
            DEVICE, "gemm", lambda: (fit, ds.x, ds.y, ds.x.shape[1])
        )
        assert not learner.tick()  # nothing observed yet
        learner.observe(DEVICE, "gemm", ds.x[0], 2.0)
        assert not learner.tick(now=0.0)   # way in the "past"
        assert learner.tick(now=1e12)      # interval elapsed
        (update,) = learner.run_due()
        assert update.record.trigger == "interval"
        assert update.record.version == 1

    def test_flush_consumes_sub_cadence_leftovers(self, trained_gemm_tuner):
        learner = OnlineLearner(CFG)
        fit = trained_gemm_tuner.fit_result
        ds = trained_gemm_tuner.dataset
        learner.ensure_registered(
            DEVICE, "gemm", lambda: (fit, ds.x, ds.y, ds.x.shape[1])
        )
        for i in range(3):  # < update_every: no cadence trip
            learner.observe(DEVICE, "gemm", ds.x[i], 2.0 + i)
        assert learner.pending() == 0
        (update,) = learner.flush()
        assert update.record.trigger == "flush"
        assert update.record.n_buffer == 3
        assert learner.flush() == []  # nothing left

    def test_rejects_non_finite_measurements(self, trained_gemm_tuner):
        learner = OnlineLearner(CFG)
        fit = trained_gemm_tuner.fit_result
        ds = trained_gemm_tuner.dataset
        learner.ensure_registered(
            DEVICE, "gemm", lambda: (fit, ds.x, ds.y, ds.x.shape[1])
        )
        assert not learner.observe(DEVICE, "gemm", ds.x[0], float("nan"))
        assert not learner.observe(DEVICE, "gemm", ds.x[0], 0.0)
        assert learner.flush() == []


# ----------------------------------------------------------------------
# Engine integration: versions on replies, swaps, determinism
# ----------------------------------------------------------------------

def _run_traffic(engine, ms=(256, 288, 320, 352)):
    """Fixed query sequence; returns (replies, update digests)."""
    digests = []
    replies = []
    for m in ms:
        replies.append(
            engine.query(KernelRequest("gemm", _shape(m), k=10, reps=2))
        )
        for update in engine.run_online_updates():
            digests.append(update.record.digest)
    return replies, digests


class TestEngineOnline:
    def test_replies_carry_model_version(self):
        engine = _online_engine()
        req = KernelRequest("gemm", _shape(256), k=10, reps=2)
        first = engine.query(req)
        assert first.source == "search" and first.model_version == 0
        again = engine.query(req)
        # Cache hits carry no version: the model was not consulted.
        assert again.source == "lru" and again.model_version is None
        engine.run_online_updates()
        bumped = engine.query(KernelRequest("gemm", _shape(512), k=10,
                                            reps=2))
        assert bumped.model_version == engine.model_version(DEVICE, "gemm")
        assert bumped.model_version >= 1
        assert engine.stats().model_swaps >= 1
        assert engine.stats().online_updates >= 1

    def test_frozen_engine_reports_version_zero(self, trained_gemm_tuner):
        engine = Engine(max_workers=0)
        engine.register(trained_gemm_tuner)
        reply = engine.query(KernelRequest("gemm", _shape(256), k=5,
                                           reps=1))
        assert reply.model_version == 0
        assert engine.online is None
        assert engine.online_status() == {}
        assert engine.run_online_updates() == []
        assert engine.stats().online_updates == 0

    def test_store_search_result_feeds_learner(self):
        """The worker tier's results enter the buffer through the
        parent's authoritative store path."""
        engine = _online_engine()
        reply = engine.query(KernelRequest("gemm", _shape(256), k=10,
                                           reps=2))
        before = engine.online.describe()[(DEVICE, "gemm")]["total_pairs"]
        engine.store_search_result(
            KernelRequest("gemm", _shape(999, 64, 128), k=10, reps=2),
            RankedKernel(
                config=reply.config,
                predicted_tflops=reply.predicted_tflops,
                measured_tflops=reply.measured_tflops,
                source="reranked",
                model_version=0,
            ),
        )
        after = engine.online.describe()[(DEVICE, "gemm")]["total_pairs"]
        assert after == before + 1

    def test_replay_is_bit_identical(self):
        d1 = _run_traffic(_online_engine())[1]
        d2 = _run_traffic(_online_engine())[1]
        assert d1 and d1 == d2
        # ... and the full persisted log matches record for record.
        assert len(set(d1)) == len(d1)  # every update distinct

    def test_post_swap_search_matches_standalone_tuner(self):
        """Front-door equivalence survives a hot-swap: the served fit is
        exactly the exported bytes, folded search included."""
        engine = _online_engine()
        _run_traffic(engine)
        assert engine.model_version(DEVICE, "gemm") >= 1
        blob, dtype_names = engine.export_fits(
            [(DEVICE, "gemm")]
        )[(DEVICE, "gemm")]
        clone = Isaac.from_fit(
            TESLA_P100, "gemm", fit_from_bytes(blob),
            dtypes=tuple(DType[n] for n in dtype_names),
        )
        probe = _shape(448, 96, 448)
        reply = engine.query(KernelRequest("gemm", probe, k=10, reps=2))
        best = clone.best_kernel(probe, k=10, reps=2)
        assert reply.config == best.config
        assert reply.measured_tflops == best.measured_tflops

    def test_background_thread_trains_and_stops(self):
        import time as _time

        engine = _online_engine()
        assert engine.start_online()
        assert not engine.start_online()  # already running
        engine.query(KernelRequest("gemm", _shape(256), k=10, reps=2))
        deadline = _time.monotonic() + 30
        while (engine.model_version(DEVICE, "gemm") < 1
               and _time.monotonic() < deadline):
            _time.sleep(0.05)
        assert engine.model_version(DEVICE, "gemm") >= 1
        engine.close()
        assert engine._online_thread is None
        status = engine.online_status()[(DEVICE, "gemm")]
        assert status["updates"] >= 1

    def test_front_door_equivalence_with_hot_swaps(self):
        """Engine and AsyncEngine answer identically under online updates
        when traffic (and thus every cadence trip) is identical: the
        swap is applied between replies either way, so configs, numbers
        and version tags all match."""
        ms = (256, 288, 320, 352, 384)

        def run_sync():
            engine = _online_engine()
            out = []
            for m in ms:
                r = engine.query(KernelRequest("gemm", _shape(m), k=10,
                                               reps=2))
                out.append((r.config, r.measured_tflops, r.model_version))
                engine.run_online_updates()
            engine.close()
            return out

        def run_async():
            engine = _online_engine()

            async def main():
                out = []
                async with AsyncEngine(engine, own_engine=True,
                                       window_ms=1.0) as front:
                    for m in ms:
                        r = await front.query(
                            KernelRequest("gemm", _shape(m), k=10, reps=2)
                        )
                        out.append((r.config, r.measured_tflops,
                                    r.model_version))
                        engine.run_online_updates()
                return out

            return asyncio.run(main())

        assert run_sync() == run_async()

    def test_hot_swap_stress_never_tears_fit_h0(self):
        """Threads query distinct shapes while updates swap weights in;
        every reply lands, and under the pair's lock the folded search
        state is always current w.r.t. the live model (the no-torn-pair
        invariant the swap's eager refold guarantees)."""
        engine = _online_engine()
        tuner = engine._tuner(DEVICE, "gemm")
        lock = engine._tuner_locks[(DEVICE, "gemm")]
        errors: list[BaseException] = []
        replies: list = []
        replies_lock = threading.Lock()
        stop = threading.Event()

        def client(worker: int) -> None:
            try:
                for i in range(6):
                    reply = engine.query(KernelRequest(
                        "gemm", _shape(192 + 16 * worker, 64, 192 + 8 * i),
                        k=8, reps=1,
                    ))
                    with replies_lock:
                        replies.append(reply)
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        def auditor() -> None:
            try:
                while not stop.is_set():
                    with lock:
                        folded = tuner.searcher._folded
                        assert folded is None or folded.is_current()
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(w,))
                   for w in range(6)]
        audit = threading.Thread(target=auditor)
        audit.start()
        for t in threads:
            t.start()
        swaps = 0
        while any(t.is_alive() for t in threads):
            swaps += len(engine.run_online_updates())
        for t in threads:
            t.join()
        swaps += len(engine.run_online_updates())
        stop.set()
        audit.join()
        assert not errors
        assert len(replies) == 36  # zero dropped requests
        assert swaps >= 1
        top = engine.model_version(DEVICE, "gemm")
        assert all(
            r.model_version is None or 0 <= r.model_version <= top
            for r in replies
        )


# ----------------------------------------------------------------------
# Close-path persistence (exactly once)
# ----------------------------------------------------------------------

class TestFinalize:
    def test_close_flushes_and_persists_exactly_once(self, tmp_path):
        engine = _online_engine(model_dir=tmp_path)
        # Fewer pairs than the cadence: only the close-flush trains.
        engine.query(KernelRequest("gemm", _shape(256), k=4, reps=1))
        assert engine.stats().model_swaps == 0
        engine.close()
        log_path = tmp_path / "online_updates.json"
        records = json.loads(log_path.read_text())
        assert [r["trigger"] for r in records] == ["flush"]
        assert records[0]["version"] == 1
        saved = list(tmp_path.glob("*.npz"))
        assert len(saved) == 1
        # Second close must not retrain or rewrite anything: remove the
        # log sentinel and verify it stays gone.
        log_path.unlink()
        engine.close()
        assert not log_path.exists()
        # The persisted fit reloads at its bumped version and serves.
        with Engine.open(tmp_path) as reopened:
            assert reopened.model_version(DEVICE, "gemm") == 1
            reply = reopened.query(
                KernelRequest("gemm", _shape(256), k=4, reps=1)
            )
            assert reply.model_version in (None, 1)  # profile hit or search

    def test_close_without_traffic_writes_nothing(self, tmp_path):
        engine = _online_engine(model_dir=tmp_path)
        engine.close()
        assert not (tmp_path / "online_updates.json").exists()
        assert not list(tmp_path.glob("*.npz"))


# ----------------------------------------------------------------------
# Serialization: lineage round-trip + backward compatibility
# ----------------------------------------------------------------------

class TestLineageSerialization:
    def test_round_trip(self, trained_gemm_tuner):
        fit = trained_gemm_tuner.fit_result
        lineage = FitLineage(model_version=3, parent_version=2,
                             n_samples=123, seed=9)
        tagged = fine_tune_fit(
            fit,
            trained_gemm_tuner.dataset.x[:16],
            trained_gemm_tuner.dataset.y[:16],
            anchor_x=None, anchor_y=None,
            config=OnlineConfig(epochs=1), lineage=lineage,
        )
        loaded = fit_from_bytes(fit_to_bytes(tagged))
        assert loaded.lineage == lineage
        assert loaded.model_version == 3

    def test_untagged_fit_loads_as_version_zero(self, trained_gemm_tuner):
        fit = trained_gemm_tuner.fit_result
        blob = fit_to_bytes(fit)
        loaded = fit_from_bytes(blob)
        assert loaded.lineage is None or loaded.lineage.model_version == 0
        assert loaded.model_version == 0


# ----------------------------------------------------------------------
# Async front door: version accounting + the background task
# ----------------------------------------------------------------------

class TestAsyncOnline:
    def test_stats_count_searches_per_version(self):
        engine = _online_engine()

        async def main():
            async with AsyncEngine(engine, own_engine=True,
                                   window_ms=1.0) as front:
                await front.query_many([
                    KernelRequest("gemm", _shape(200 + 16 * i, 64, 200),
                                  k=10, reps=2)
                    for i in range(3)
                ])
                front._run_online_once()
                await front.query(
                    KernelRequest("gemm", _shape(640, 96, 640), k=10,
                                  reps=2)
                )
                return front.stats()

        stats = asyncio.run(main())
        assert stats.model_versions.get(0) == 3
        assert stats.online_updates >= 1
        top = max(stats.model_versions)
        assert top >= 1 and stats.model_versions[top] == 1
        assert "searches by model version" in stats.describe()

    def test_online_task_spins_up_and_cancels_cleanly(self):
        engine = _online_engine()

        async def main():
            async with AsyncEngine(engine, own_engine=True,
                                   window_ms=1.0) as front:
                await front.query(
                    KernelRequest("gemm", _shape(256), k=10, reps=2)
                )
                assert front._online_task is not None
                # Give the task a couple of poll cycles to train + swap.
                for _ in range(40):
                    await asyncio.sleep(0.1)
                    if engine.model_version(DEVICE, "gemm") >= 1:
                        break
                return engine.model_version(DEVICE, "gemm")

        assert asyncio.run(main()) >= 1

    def test_frozen_front_door_never_starts_task(self, trained_gemm_tuner):
        engine = Engine(max_workers=0)
        engine.register(trained_gemm_tuner)

        async def main():
            async with AsyncEngine(engine, own_engine=False,
                                   window_ms=1.0) as front:
                await front.query(
                    KernelRequest("gemm", _shape(256), k=5, reps=1)
                )
                assert front._online_task is None
                return front.stats()

        stats = asyncio.run(main())
        assert stats.online_updates == 0
        assert stats.model_versions == {0: 1}
        engine.close()


# ----------------------------------------------------------------------
# CLI: the ``models`` verb + version tags in ``query`` output
# ----------------------------------------------------------------------

class TestCli:
    def test_models_verb_lists_versions_and_update_log(self, tmp_path,
                                                       capsys):
        engine = _online_engine(model_dir=tmp_path)
        engine.query(KernelRequest("gemm", _shape(256), k=4, reps=1))
        engine.close()  # close-flush persists v1 + the update log

        from repro.harness.cli import main

        assert main(["models", "--models", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "v1" in out and "parent=v0" in out
        assert "online update log" in out and "trigger=flush" in out
        # The device filter keeps matching rows and drops others.
        assert main(["models", "--models", str(tmp_path),
                     "--device", "maxwell"]) == 0
        out = capsys.readouterr().out
        assert "no saved fits" in out

    def test_models_verb_rejects_missing_dir(self, tmp_path):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["models", "--models", str(tmp_path / "nope")])

    def test_query_verb_prints_model_version(self, tmp_path, capsys,
                                             trained_gemm_tuner):
        trained_gemm_tuner.save(tmp_path / "p100-gemm.npz")
        from repro.harness.cli import main

        assert main([
            "query", "--models", str(tmp_path), "--op", "gemm",
            "--shape", "64x64x64", "-k", "4", "--reps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "model=v0" in out

    def test_serve_online_end_to_end(self, tmp_path, capsys,
                                     trained_gemm_tuner):
        """``serve --online`` fine-tunes from the replayed network's
        misses, reports per-version search counts, and persists the
        update log on exit."""
        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")
        from repro.harness.cli import main

        rc = main([
            "serve", "--models", str(tmp_path), "--network", "rnn",
            "--passes", "2", "--concurrency", "8", "-k", "10",
            "--reps", "2", "--online", "--online-every", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "served 32 requests" in out
        assert "searches by model version" in out
        # The close-path flush trained whatever the cadence left behind.
        log = json.loads((tmp_path / "online_updates.json").read_text())
        assert log and all(r["version"] >= 1 for r in log)

    def test_serve_parser_accepts_online_flags(self):
        from repro.harness.cli import _service_parser

        args = _service_parser().parse_args([
            "serve", "--models", "m", "--network", "rnn",
            "--online", "--online-every", "16", "--online-epochs", "2",
        ])
        assert args.online and args.online_every == 16
        assert args.online_interval is None
        frozen = _service_parser().parse_args([
            "serve", "--models", "m", "--network", "rnn",
        ])
        assert not frozen.online


class TestRollbackGuard:
    """The anchor-regression guard: a fine-tune that regresses the
    anchor slice beyond tolerance is discarded, recorded as rejected,
    and the serving fit stays at the parent version."""

    def _cfg(self, tol):
        return OnlineConfig(update_every=8, epochs=2, anchor_size=64,
                            batch_size=32, rollback_tolerance=tol)

    def test_negative_tolerance_rejects_every_update(self):
        engine = _online_engine(config=self._cfg(-1.0))
        replies, digests = _run_traffic(engine)
        # Every candidate was judged and thrown away: no applied updates,
        # no version bump, but the rejection is on the record.
        assert digests == []
        assert engine.model_version(DEVICE, "gemm") == 0
        log = engine.online.update_log()
        assert log and all(r.status == "rejected" for r in log)
        assert all(np.isfinite(r.parent_val_mse) for r in log)
        desc = engine.online.describe()[(DEVICE, "gemm")]
        assert desc["updates"] == 0
        assert desc["rejections"] == len(log)
        # Serving stayed on the offline fit throughout.
        assert all(
            r.model_version in (None, 0) for r in replies
        )

    def test_huge_tolerance_applies_updates(self):
        engine = _online_engine(config=self._cfg(1e6))
        _, digests = _run_traffic(engine)
        assert digests
        log = engine.online.update_log()
        assert all(r.status == "applied" for r in log)
        assert all(np.isfinite(r.parent_val_mse) for r in log)
        assert engine.model_version(DEVICE, "gemm") >= 1
        desc = engine.online.describe()[(DEVICE, "gemm")]
        assert desc["rejections"] == 0

    def test_rejection_is_deterministic(self):
        log1 = None
        for _ in range(2):
            engine = _online_engine(config=self._cfg(-1.0))
            _run_traffic(engine)
            log = [
                (r.status, r.digest) for r in engine.online.update_log()
            ]
            if log1 is None:
                log1 = log
            else:
                assert log == log1

    def test_disabled_guard_never_judges(self):
        engine = _online_engine(config=CFG)  # rollback_tolerance=None
        _, digests = _run_traffic(engine)
        assert digests
        log = engine.online.update_log()
        assert all(r.status == "applied" for r in log)
        # No judging happened: the parent mse field stays unset.
        assert all(np.isnan(r.parent_val_mse) for r in log)
