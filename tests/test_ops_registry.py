"""Tests for the OpSpec registry and the pre-scaled, batched search path.

Three properties anchor the refactor:

* a *new* operation registered through :func:`repro.core.ops.register_op`
  runs the whole pipeline (tune -> top_k -> best_kernel -> profile cache)
  without any of those layers knowing its name;
* the pre-scaled first-layer-folded search path is numerically the old
  re-standardize-everything path (to ~1e-9);
* :meth:`ExhaustiveSearch.top_k_batch` returns exactly what per-shape
  :meth:`top_k` returns.
"""

import json

import numpy as np
import pytest

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_gemm
from repro.core.ops import OpSpec, get_op, register_op, registered_ops, unregister_op
from repro.core.profile_cache import ProfileCache
from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.gpu.simulator import benchmark_gemm, simulate_gemm
from repro.inference.search import ExhaustiveSearch, legal_configs
from repro.mlp.crossval import fit_regressor
from repro.sampling.dataset import GemmShapeSampler, generate_dataset
from repro.sampling.features import (
    GEMM_CONFIG_FEATURES,
    GEMM_SHAPE_FEATURES,
    gemm_config_matrix,
    gemm_shape_vector,
)
from tests.conftest import TINY_GEMM_SPACE


def _make_toy_spec(name: str = "toygemm") -> OpSpec:
    """A minimal op: GEMM restricted to the tiny test space.

    Everything is assembled from existing pieces — the point is that the
    pipeline only ever sees the spec, never the name.
    """
    return OpSpec(
        name=name,
        shape_type=GemmShape,
        config_type=GemmConfig,
        space=TINY_GEMM_SPACE,
        default_dtypes=(DType.FP32,),
        config_features=GEMM_CONFIG_FEATURES,
        shape_features=GEMM_SHAPE_FEATURES,
        is_legal=is_legal_gemm,
        config_matrix=gemm_config_matrix,
        shape_vector=gemm_shape_vector,
        candidates=lambda device, shape, space=None: legal_configs(
            device, shape.dtype, name, space
        )[0],
        simulate=simulate_gemm,
        benchmark=benchmark_gemm,
        make_shape_sampler=lambda dtypes: GemmShapeSampler(
            m_range=(16, 512), n_range=(16, 512), k_range=(16, 4096),
            dtypes=tuple(dtypes),
        ),
        shape_key=lambda s: f"{s.m}x{s.n}x{s.k}|{s.dtype.name}|{s.layout_code}",
        enumerable=True,
    )


@pytest.fixture
def toy_op():
    spec = register_op(_make_toy_spec())
    yield spec
    unregister_op(spec.name)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"gemm", "conv", "bgemm"} <= set(registered_ops())

    def test_get_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown op"):
            get_op("fft")

    def test_duplicate_register_raises(self, toy_op):
        with pytest.raises(ValueError, match="already registered"):
            register_op(_make_toy_spec())

    def test_spec_passthrough(self, toy_op):
        assert get_op(toy_op) is toy_op
        assert get_op(toy_op.name) is toy_op

    def test_feature_split(self):
        spec = get_op("gemm")
        assert spec.n_config_features == 10
        assert len(spec.feature_names) == 16
        bspec = get_op("bgemm")
        assert bspec.n_config_features == 10
        assert "batch" in bspec.shape_features


class TestToyOpEndToEnd:
    """A freshly registered op drives the whole pipeline by name only."""

    def test_tune_top_k_best_kernel(self, toy_op, tmp_path):
        tuner = Isaac(TESLA_P100, op=toy_op.name)
        assert tuner.dtypes == (DType.FP32,)
        report = tuner.tune(
            n_samples=250, epochs=8, generative_target=80, seed=5
        )
        assert report.n_samples == 250

        shape = GemmShape(512, 512, 1024, DType.FP32, False, True)
        top = tuner.top_k(shape, k=12)
        assert len(top) == 12
        preds = [t.predicted_tflops for t in top]
        assert preds == sorted(preds, reverse=True)

        cache = ProfileCache(tmp_path / "toy.json")
        best = tuner.best_kernel(shape, k=12, cache=cache)
        assert best.measured_tflops > 0
        assert len(cache) == 1
        # Second query is served from the cache.
        hit = tuner.best_kernel(shape, k=12, cache=cache)
        assert hit.config == best.config

        # Round-trips through the generic persistence path.
        cache.save()
        reloaded = ProfileCache(tmp_path / "toy.json")
        got = reloaded.get(toy_op.name, TESLA_P100.name, shape)
        assert got is not None and got[0] == best.config


@pytest.fixture(scope="module")
def tiny_fit():
    """A quick regressor over the tiny space for numerical-parity tests."""
    rng = np.random.default_rng(11)
    from repro.sampling.dataset import fit_generative_models

    samplers = fit_generative_models(
        TESLA_P100, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=150,
    )
    ds = generate_dataset(
        TESLA_P100, "gemm", 1800, rng, samplers=samplers,
        dtypes=(DType.FP32,),
    )
    return fit_regressor(
        ds.x[:1600], ds.y[:1600], ds.x[1600:], ds.y[1600:],
        hidden=(32, 64, 32), epochs=12,
    )


SHAPES = [
    GemmShape(512, 512, 512, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 30000, DType.FP32, False, True),
    GemmShape(512, 512, 512, DType.FP32, False, True),  # duplicate on purpose
    GemmShape(1024, 256, 1024, DType.FP16, True, False),  # second dtype group
]


class TestPreScaledPath:
    def test_predictions_match_reference(self, tiny_fit):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=TINY_GEMM_SPACE
        )
        for shape in SHAPES:
            fast = search.predictions(shape)
            ref = search.predictions_reference(shape)
            assert fast.shape == ref.shape
            np.testing.assert_allclose(fast, ref, rtol=0, atol=1e-9)

    def test_in_place_model_mutation_invalidates_fold(self, tiny_fit):
        """Pruning/fine-tuning mutate layer weights in place; the folded
        first-layer cache must notice and re-fold rather than silently
        mixing stale and current weights."""
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=TINY_GEMM_SPACE
        )
        shape = SHAPES[0]
        search.top_k(shape, k=5)  # warm the fold + H0
        first = tiny_fit.model.layers[0]
        # Weight-only mutation, like magnitude pruning (biases untouched).
        first.w *= 0.5
        try:
            np.testing.assert_allclose(
                search.predictions(shape),
                search.predictions_reference(shape),
                rtol=0, atol=1e-9,
            )
        finally:
            first.w *= 2.0

    def test_top_k_batch_matches_per_shape(self, tiny_fit):
        search = ExhaustiveSearch(
            tiny_fit, TESLA_P100, "gemm", space=TINY_GEMM_SPACE
        )
        batched = search.top_k_batch(SHAPES, k=25)
        assert len(batched) == len(SHAPES)
        for shape, batch_result in zip(SHAPES, batched):
            single = search.top_k(shape, k=25)
            assert [p.config for p in batch_result] == [
                p.config for p in single
            ]
            assert [p.predicted_tflops for p in batch_result] == [
                p.predicted_tflops for p in single
            ]


class TestBatchedGemmOp:
    """The third registered op tunes end-to-end through the registry."""

    def test_bgemm_end_to_end(self, tmp_path):
        from repro.core.batched import BatchedGemmShape

        tuner = Isaac(TESLA_P100, op="bgemm", dtypes=(DType.FP32,))
        tuner.tune(n_samples=250, epochs=8, generative_target=80, seed=3)

        shape = BatchedGemmShape(batch=32, base=GemmShape(128, 128, 256))
        top = tuner.top_k(shape, k=10)
        assert len(top) == 10

        cache = ProfileCache(tmp_path / "bgemm.json")
        best = tuner.best_kernel(shape, k=10, cache=cache)
        assert best.measured_tflops > 0
        hit = cache.get("bgemm", TESLA_P100.name, shape)
        assert hit is not None and hit[0] == best.config

    def test_bgemm_batch_is_input_feature(self):
        from repro.core.batched import BatchedGemmShape
        from repro.sampling.features import bgemm_shape_vector

        a = bgemm_shape_vector(BatchedGemmShape(4, GemmShape(64, 64, 64)))
        b = bgemm_shape_vector(BatchedGemmShape(64, GemmShape(64, 64, 64)))
        assert a[0] != b[0]
        np.testing.assert_allclose(a[1:], b[1:])


class TestProfileCacheAtomicity:
    def test_save_leaves_no_temp_files(self, tmp_path):
        cache = ProfileCache(tmp_path / "p.json")
        cache.put(
            "gemm", "dev", GemmShape(64, 64, 64),
            GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8), 1.0,
        )
        cache.save()
        # save() writes the cache plus its integrity sidecar, nothing else
        # (no leftover tempfiles from the atomic-replace dance).
        assert sorted(p.name for p in tmp_path.iterdir()) == ["p.json", "p.json.b2"]
        assert json.loads((tmp_path / "p.json").read_text())

    def test_failed_replace_preserves_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "p.json"
        cache = ProfileCache(path)
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        cache.put("gemm", "dev", GemmShape(64, 64, 64), cfg, 1.0)
        cache.save()
        before = path.read_text()

        cache.put("gemm", "dev", GemmShape(128, 128, 128), cfg, 2.0)
        import os as os_mod

        def boom(src, dst):
            raise OSError("simulated crash mid-save")

        monkeypatch.setattr(os_mod, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            cache.save()
        monkeypatch.undo()

        # The original file is untouched and still valid JSON …
        assert path.read_text() == before
        assert len(ProfileCache(path)) == 1
        # … and the aborted temp file was cleaned up.  The integrity
        # sidecar from the first save survives (the digest update runs
        # after the replace, which never happened) and still matches.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["p.json", "p.json.b2"]
        from repro.core import integrity

        assert integrity.check(path) is True
