"""Tests for MLP magnitude pruning (§5.2 extension)."""

import numpy as np
import pytest

from repro.mlp.losses import mse
from repro.mlp.network import MLP
from repro.mlp.pruning import prune, sparsity_of, weight_masks
from repro.mlp.training import train


@pytest.fixture
def trained_net(rng):
    x = rng.standard_normal((3000, 6))
    y = x @ np.array([1.0, -2.0, 0.5, 3.0, 0.0, 0.25]) + np.sin(x[:, 0])
    net = MLP(6, (32, 32), seed=0)
    train(net, x, y, epochs=40, seed=0)
    return net, x, y


class TestMasks:
    def test_sparsity_validation(self):
        net = MLP(4, (8,), seed=0)
        with pytest.raises(ValueError):
            weight_masks(net, 1.0)
        with pytest.raises(ValueError):
            weight_masks(net, -0.1)

    def test_mask_fraction(self):
        net = MLP(8, (16, 16), seed=0)
        masks = weight_masks(net, 0.5)
        kept = sum(int(m.sum()) for m in masks)
        total = sum(m.size for m in masks)
        assert kept / total == pytest.approx(0.5, abs=0.02)

    def test_zero_sparsity_keeps_everything(self):
        net = MLP(8, (16,), seed=0)
        masks = weight_masks(net, 0.0)
        assert all(m.all() for m in masks)

    def test_global_threshold_prunes_smallest(self):
        net = MLP(4, (8,), seed=0)
        net.layers[0].w[0, 0] = 100.0   # must survive
        net.layers[0].w[1, 1] = 1e-9    # must die
        masks = weight_masks(net, 0.3)
        assert masks[0][0, 0]
        assert not masks[0][1, 1]


class TestPrune:
    def test_report_accounting(self, trained_net):
        net, x, y = trained_net
        report = prune(net, 0.6)
        assert report.sparsity == pytest.approx(0.6, abs=0.02)
        assert report.kept_weights + 0 < report.total_weights
        assert report.mac_reduction == pytest.approx(0.6, abs=0.05)
        assert sparsity_of(net) == pytest.approx(report.sparsity, abs=1e-6)

    def test_moderate_pruning_preserves_accuracy(self, trained_net):
        net, x, y = trained_net
        before = mse(net.predict(x), y)
        prune(net, 0.5, x_finetune=x, y_finetune=y, finetune_epochs=8)
        after = mse(net.predict(x), y)
        assert after < max(2.5 * before, before + 0.05)

    def test_finetune_respects_masks(self, trained_net):
        net, x, y = trained_net
        prune(net, 0.7, x_finetune=x, y_finetune=y, finetune_epochs=5)
        assert sparsity_of(net) == pytest.approx(0.7, abs=0.02)

    def test_extreme_pruning_degrades(self, trained_net):
        net, x, y = trained_net
        before = mse(net.predict(x), y)
        prune(net, 0.98)
        after = mse(net.predict(x), y)
        assert after > before
