"""Tests for pseudo-PTX rendering, the mini-ISA, and the verifier."""

import pytest

from repro.core.config import GemmConfig
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.ptx.conv_codegen import ConvKernel
from repro.ptx.gemm_codegen import GemmKernel
from repro.ptx.isa import Instr, OpClass, classify, fma_opcode
from repro.ptx.verifier import verify_ptx


class TestIsa:
    def test_instr_rejects_unknown_opcode(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Instr("mul24.lo")

    def test_vector_render(self):
        i = Instr("ld.global.nc", "%f0", ("[%r0]",), vec=4)
        assert ".v4" in i.render()

    def test_predicated_render(self):
        i = Instr("st.global", "[%r0]", ("%f0",), pred="%p0")
        assert i.render().startswith("@%p0 ")

    def test_repeat_annotation(self):
        i = Instr("fma.rn.f32", "%f0", ("%a", "%b", "%f0"), repeat=64)
        assert "x64" in i.render()

    def test_classify(self):
        assert classify("fma.rn.f32") is OpClass.FMA
        assert classify("bar.sync") is OpClass.BARRIER
        with pytest.raises(ValueError):
            classify("frob")

    @pytest.mark.parametrize(
        "dtype,packed,expected",
        [
            ("FP16", True, "fma.rn.f16x2"),
            ("FP16", False, "fma.rn.f16"),
            ("FP32", False, "fma.rn.f32"),
            ("FP64", False, "fma.rn.f64"),
        ],
    )
    def test_fma_opcode(self, dtype, packed, expected):
        assert fma_opcode(dtype, packed) == expected


def _gemm_kernels():
    shapes = [
        GemmShape(512, 512, 512, DType.FP32, False, True),
        GemmShape(2560, 16, 2560, DType.FP32, False, False),
        GemmShape(100, 60, 333, DType.FP64, True, False),
        GemmShape(1024, 1024, 1024, DType.FP16, False, True),
    ]
    cfgs = [
        GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2),
        GemmConfig(ms=2, ns=4, ml=64, nl=16, u=16, kg=4, vec=2, db=2),
        GemmConfig(ms=2, ns=4, ml=32, nl=32, u=8, kl=4, kg=8, vec=1, db=2),
    ]
    for shape in shapes:
        for cfg in cfgs:
            for device in (GTX_980_TI, TESLA_P100):
                yield GemmKernel(cfg=cfg, shape=shape, device=device)


class TestGemmRendering:
    def test_all_rendered_kernels_verify(self):
        count = 0
        for kernel in _gemm_kernels():
            result = verify_ptx(kernel.emit(), kernel.device)
            assert result.ok, (kernel.name(), result.errors)
            count += 1
        assert count == 24

    def test_kg_kernel_uses_atomics(self):
        kernel = GemmKernel(
            cfg=GemmConfig(ms=4, ns=4, ml=32, nl=32, u=8, kg=8, db=2),
            shape=GemmShape(32, 32, 60000, DType.FP32, False, True),
            device=GTX_980_TI,
        )
        text = kernel.emit()
        assert "red.global.add" in text
        assert "st.global" not in text.replace("red.global", "")

    def test_predicated_kernel_guards_loads(self):
        kernel = GemmKernel(
            cfg=GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2),
            shape=GemmShape(100, 100, 100, DType.FP32),
            device=GTX_980_TI,
            bounds_mode="predicated",
        )
        assert "@%p0 " in kernel.emit()

    def test_fp16_packed_opcode_appears_on_pascal(self):
        kernel = GemmKernel(
            cfg=GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2),
            shape=GemmShape(512, 512, 512, DType.FP16, False, True),
            device=TESLA_P100,
        )
        assert "fma.rn.f16x2" in kernel.emit()

    def test_target_directive_matches_arch(self):
        for device, target in ((GTX_980_TI, "sm_52"), (TESLA_P100, "sm_60")):
            kernel = GemmKernel(
                cfg=GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2),
                shape=GemmShape(64, 64, 64, DType.FP32),
                device=device,
            )
            assert f".target {target}" in kernel.emit()


class TestConvRendering:
    def test_conv_kernel_verifies(self, good_conv_cfg):
        shape = ConvShape.from_output(n=8, p=16, q=16, k=64, c=64, r=3, s=3)
        for device in (GTX_980_TI, TESLA_P100):
            kernel = ConvKernel(cfg=good_conv_cfg, shape=shape, device=device)
            result = verify_ptx(kernel.emit(), device)
            assert result.ok, result.errors

    def test_conv_text_mentions_indirection_table(self, good_conv_cfg):
        shape = ConvShape.from_output(n=8, p=16, q=16, k=64, c=64, r=3, s=3)
        text = ConvKernel(
            cfg=good_conv_cfg, shape=shape, device=GTX_980_TI
        ).emit()
        assert "indirection" in text


class TestVerifier:
    def test_flags_unknown_opcode(self):
        text = """
.shared .align 16 .b8 smem[1024];
frobnicate %r0, %r1;
st.shared [smem], %f0;
bar.sync 0;
"""
        result = verify_ptx(text, GTX_980_TI)
        assert not result.ok
        assert any("unknown opcode" in e for e in result.errors)

    def test_flags_missing_barrier(self):
        text = """
.shared .align 16 .b8 smem[1024];
st.shared [smem], %f0;
ld.shared %f1, [smem];
ret;
"""
        result = verify_ptx(text, GTX_980_TI)
        assert any("barrier" in e for e in result.errors)

    def test_flags_undefined_branch_target(self):
        text = """
.shared .align 16 .b8 smem[64];
bar.sync 0;
bra NOWHERE;
"""
        result = verify_ptx(text, GTX_980_TI)
        assert any("undefined label" in e for e in result.errors)

    def test_flags_smem_overflow(self):
        text = f"""
.shared .align 16 .b8 smem[{49 * 1024 + 1}];
bar.sync 0;
"""
        result = verify_ptx(text, GTX_980_TI)
        assert any("exceeds" in e for e in result.errors)

    def test_flags_missing_smem(self):
        result = verify_ptx("ret;", GTX_980_TI)
        assert any("no shared memory" in e for e in result.errors)

    def test_histogram_counts_base_opcodes(self):
        text = """
.shared .align 16 .b8 smem[256];
ld.global.nc.v4 %f0, [%r0];
ld.global.nc %f1, [%r1];
st.shared [smem], %f0;
bar.sync 0;
"""
        result = verify_ptx(text, GTX_980_TI)
        assert result.opcode_histogram["ld.global.nc"] == 2
