"""Tests for uniform / categorical samplers and the acceptance machinery."""

import numpy as np
import pytest

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_gemm
from repro.core.space import GEMM_SPACE, ParamSpace, table1_space
from repro.core.types import DType
from repro.gpu.device import GTX_980_TI
from repro.sampling.generative import PAPER_ALPHA, CategoricalModel
from repro.sampling.uniform import UniformSampler, acceptance_rate


def _accept(point) -> bool:
    return is_legal_gemm(GemmConfig.from_dict(point), DType.FP32, GTX_980_TI)


class TestUniformSampler:
    def test_samples_lie_in_space(self, rng):
        sampler = UniformSampler(GEMM_SPACE, rng)
        for _ in range(200):
            assert GEMM_SPACE.contains(sampler.sample())

    def test_batch_matches_space(self, rng):
        sampler = UniformSampler(GEMM_SPACE, rng)
        batch = sampler.sample_batch(500)
        assert len(batch) == 500
        assert all(GEMM_SPACE.contains(p) for p in batch)

    def test_roughly_uniform_marginals(self, rng):
        space = ParamSpace("t", (("a", (1, 2, 4, 8)),))
        sampler = UniformSampler(space, rng)
        counts = {v: 0 for v in (1, 2, 4, 8)}
        for _ in range(4000):
            counts[sampler.sample()["a"]] += 1
        for v, c in counts.items():
            assert 800 < c < 1200


class TestCategoricalModel:
    def test_prior_is_uniform_before_fit(self):
        model = CategoricalModel(GEMM_SPACE)
        p = model.probabilities("ms")
        np.testing.assert_allclose(p, np.full(len(p), 1 / len(p)))

    def test_alpha_must_be_positive(self):
        with pytest.raises(ValueError, match="alpha"):
            CategoricalModel(GEMM_SPACE, alpha=0)

    def test_paper_alpha_constant(self):
        assert PAPER_ALPHA == 100.0
        assert CategoricalModel(GEMM_SPACE).alpha == 100.0

    def test_observe_shifts_mass(self):
        model = CategoricalModel(GEMM_SPACE, alpha=1.0)
        point = {n: v[0] for n, v in GEMM_SPACE.params}
        point["ms"] = 8
        for _ in range(50):
            model.observe(point)
        p = model.probabilities("ms")
        idx = GEMM_SPACE.values("ms").index(8)
        assert p[idx] > 0.8

    def test_no_probability_is_ever_zero(self, rng):
        """The Dirichlet prior guarantees full support (§4.1)."""
        model = CategoricalModel(GEMM_SPACE)
        model.fit(_accept, rng, target_accepted=100)
        for name in GEMM_SPACE.names:
            assert (model.probabilities(name) > 0).all()

    def test_fit_improves_acceptance(self, rng):
        """The core Table 1 claim: the fitted model accepts far more often
        than uniform sampling."""
        space = table1_space(GEMM_SPACE)
        uniform = UniformSampler(space, rng)
        u_rate = acceptance_rate(uniform, _accept, 5000)

        model = CategoricalModel(space)
        model.fit(_accept, rng, target_accepted=400)

        class Adapter:
            def sample(self):
                return model.sample(rng)

        c_rate = acceptance_rate(Adapter(), _accept, 3000)
        assert c_rate > 5 * max(u_rate, 1e-4)

    def test_sample_legal_returns_legal(self, rng):
        model = CategoricalModel(GEMM_SPACE)
        model.fit(_accept, rng, target_accepted=200)
        for _ in range(20):
            point = model.sample_legal(_accept, rng)
            assert _accept(point)

    def test_sample_legal_raises_when_impossible(self, rng):
        model = CategoricalModel(GEMM_SPACE)
        with pytest.raises(RuntimeError, match="no legal sample"):
            model.sample_legal(lambda p: False, rng, max_tries=20)

    def test_log_prob_finite_and_ordered(self, rng):
        model = CategoricalModel(GEMM_SPACE, alpha=1.0)
        frequent = {n: v[0] for n, v in GEMM_SPACE.params}
        for _ in range(100):
            model.observe(frequent)
        rare = dict(frequent)
        rare["ms"] = 16
        assert model.log_prob(frequent) > model.log_prob(rare)
        assert np.isfinite(model.log_prob(rare))

    def test_fit_stats_recorded(self, rng):
        model = CategoricalModel(GEMM_SPACE)
        stats = model.fit(_accept, rng, target_accepted=50)
        assert stats.accepted == 50
        assert stats.uniform_draws >= 50
        assert 0 < stats.uniform_acceptance <= 1
