"""Tests for the alternative discrete optimizers (§6)."""

import numpy as np
import pytest

from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.inference.optimizers import (
    SEARCH_METHODS,
    SearchBudget,
    exhaustive,
    genetic_algorithm,
    simulated_annealing,
)
from repro.inference.search import ExhaustiveSearch
from tests.conftest import TINY_GEMM_SPACE

SHAPE = GemmShape(2560, 16, 2560, DType.FP32, False, False)


@pytest.fixture(scope="module")
def search():
    """A quick regressor over the tiny space for optimizer tests."""
    from repro.mlp.crossval import fit_regressor
    from repro.sampling.dataset import (
        fit_generative_models,
        generate_gemm_dataset,
    )

    rng = np.random.default_rng(5)
    samplers = fit_generative_models(
        TESLA_P100, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=150,
    )
    ds = generate_gemm_dataset(
        TESLA_P100, 2500, rng, samplers=samplers, dtypes=(DType.FP32,)
    )
    fit = fit_regressor(
        ds.x[:2200], ds.y[:2200], ds.x[2200:], ds.y[2200:],
        hidden=(32, 32), epochs=30,
    )
    return ExhaustiveSearch(fit, TESLA_P100, "gemm", space=TINY_GEMM_SPACE)


class TestSimulatedAnnealing:
    def test_returns_sorted_predictions(self, search):
        out = simulated_annealing(search, SHAPE, k=10, iters=800)
        preds = [p.predicted_tflops for p in out]
        assert preds == sorted(preds, reverse=True)
        assert 1 <= len(out) <= 10

    def test_deterministic_under_seed(self, search):
        a = simulated_annealing(search, SHAPE, k=5, iters=500, seed=3)
        b = simulated_annealing(search, SHAPE, k=5, iters=500, seed=3)
        assert [p.config for p in a] == [p.config for p in b]

    def test_respects_budget(self, search):
        budget = SearchBudget(max_evaluations=100)
        out = simulated_annealing(
            search, SHAPE, k=5, iters=10_000, budget=budget
        )
        assert len(out) <= 5

    def test_finds_near_exhaustive_optimum(self, search):
        best_exh = exhaustive(search, SHAPE, k=1)[0].predicted_tflops
        best_sa = simulated_annealing(
            search, SHAPE, k=1, iters=3_000, seed=1
        )[0].predicted_tflops
        # Within 25% of the global model optimum on the tiny space.
        assert best_sa > 0.75 * best_exh


class TestGeneticAlgorithm:
    def test_returns_sorted_predictions(self, search):
        out = genetic_algorithm(
            search, SHAPE, k=10, population=64, generations=10
        )
        preds = [p.predicted_tflops for p in out]
        assert preds == sorted(preds, reverse=True)

    def test_deterministic_under_seed(self, search):
        a = genetic_algorithm(search, SHAPE, k=5, generations=8, seed=2)
        b = genetic_algorithm(search, SHAPE, k=5, generations=8, seed=2)
        assert [p.config for p in a] == [p.config for p in b]

    def test_finds_near_exhaustive_optimum(self, search):
        best_exh = exhaustive(search, SHAPE, k=1)[0].predicted_tflops
        best_ga = genetic_algorithm(
            search, SHAPE, k=1, population=96, generations=25, seed=1
        )[0].predicted_tflops
        assert best_ga > 0.75 * best_exh


class TestRegistry:
    def test_all_methods_registered(self):
        assert set(SEARCH_METHODS) == {"exhaustive", "annealing", "genetic"}

    def test_methods_share_interface(self, search):
        for name, method in SEARCH_METHODS.items():
            out = method(search, SHAPE, k=3)
            assert len(out) >= 1, name
            assert all(p.predicted_tflops > 0 for p in out)
