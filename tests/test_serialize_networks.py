"""Tests for model serialization, network workloads and app-level eval."""

import numpy as np
import pytest

from repro.core.tuner import Isaac
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.harness.app_eval import run_network_step
from repro.mlp.crossval import fit_regressor
from repro.mlp.serialize import load_fit, save_fit
from repro.workloads.networks import (
    blocked_svd_sweep,
    face_recognition_forward,
    ica_pipeline_step,
    rnn_training_step,
)


class TestSerialize:
    @pytest.fixture
    def small_fit(self, rng):
        x = rng.standard_normal((600, 5)) + 3
        y = x.sum(axis=1) + rng.standard_normal(600) * 0.1
        return fit_regressor(
            x[:500], y[:500], x[500:], y[500:], hidden=(8, 8), epochs=15
        )

    def test_round_trip_bit_exact(self, small_fit, tmp_path, rng):
        path = tmp_path / "model.npz"
        save_fit(small_fit, path)
        restored = load_fit(path)

        x = rng.standard_normal((50, 5))
        xt = small_fit.x_scaler.transform(x)
        np.testing.assert_array_equal(
            small_fit.model.predict(xt),
            restored.model.predict(restored.x_scaler.transform(x)),
        )
        assert restored.val_mse == small_fit.val_mse
        assert restored.history.best_epoch == small_fit.history.best_epoch
        assert restored.y_scaler.inverse_transform(
            np.array([0.0])
        ) == pytest.approx(
            small_fit.y_scaler.inverse_transform(np.array([0.0]))
        )

    def test_version_check(self, small_fit, tmp_path):
        import json

        path = tmp_path / "model.npz"
        save_fit(small_fit, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "meta"}
            meta = json.loads(str(data["meta"]))
        meta["format_version"] = 99
        np.savez(path, meta=json.dumps(meta), **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_fit(path)


class TestTunerPersistence:
    def test_save_load_inference_identical(self, trained_gemm_tuner,
                                           tmp_path):
        path = tmp_path / "tuner.npz"
        trained_gemm_tuner.save(path)
        restored = Isaac.load(path)
        assert restored.device.name == TESLA_P100.name
        assert restored.op == "gemm"
        assert restored.is_tuned

        shape = GemmShape(2560, 16, 2560, DType.FP32, False, False)
        a = trained_gemm_tuner.top_k(shape, k=5)
        b = restored.top_k(shape, k=5)
        assert [p.config for p in a] == [p.config for p in b]

    def test_save_untrained_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            Isaac(TESLA_P100).save(tmp_path / "x.npz")


class TestNetworkSteps:
    def test_rnn_step_composition(self):
        step = rnn_training_step(hidden=2560, batch=32, timesteps=2)
        assert len(step.kernels) == 8
        fwd = dict(step.kernels)["t0-fwd-x"]
        assert (fwd.m, fwd.n, fwd.k) == (2560, 32, 2560)
        bwd = dict(step.kernels)["t0-bwd-dx"]
        assert bwd.ta  # backward transposes A
        assert step.total_flops > 0

    def test_ica_step(self):
        step = ica_pipeline_step(channels=64, iters=2)
        cov = dict(step.kernels)["it0-cov"]
        assert cov.k == 60000

    def test_face_recognition_uses_table5_shapes(self):
        step = face_recognition_forward()
        shapes = dict(step.kernels)
        assert shapes["Conv8"].crs == 20800
        assert all(isinstance(s, ConvShape) for s in shapes.values())

    def test_svd_sweep(self):
        step = blocked_svd_sweep()
        assert all(s.k == 32 for _, s in step.kernels)


class TestAppEval:
    def test_rnn_step_end_to_end(self, trained_gemm_tuner):
        step = rnn_training_step(hidden=1024, batch=16, timesteps=1)
        result = run_network_step(trained_gemm_tuner, step, k=30, reps=2)
        assert result.isaac_ms > 0 and result.baseline_ms > 0
        assert len(result.per_kernel) == len(step.kernels)
        # Skinny-batch RNN steps are ISAAC's home turf.
        assert result.speedup > 1.0
        assert result.isaac_tflops == pytest.approx(
            step.total_flops / result.isaac_ms / 1e9
        )

    def test_shared_shapes_tuned_once(self, trained_gemm_tuner):
        """Identical shapes in one step must get identical kernels."""
        step = rnn_training_step(hidden=1024, batch=16, timesteps=2)
        result = run_network_step(trained_gemm_tuner, step, k=20, reps=2)
        times = {}
        for label, isaac_ms, _ in result.per_kernel:
            key = label.split("-", 1)[1]  # strip the timestep prefix
            times.setdefault(key, set()).add(round(isaac_ms, 9))
        for key, vals in times.items():
            assert len(vals) == 1, key
