"""Tests for the simulated GPU — the paper's performance trade-offs must
emerge from the model (these are the mechanisms §8 analyzes)."""

import pytest

from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.simulator import (
    IllegalKernelError,
    benchmark_conv,
    benchmark_gemm,
    simulate_conv,
    simulate_gemm,
)


GOOD = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)


class TestBasicSanity:
    def test_throughput_below_peak(self, device):
        for m in (64, 512, 2048):
            shape = GemmShape(m, m, m, DType.FP32, False, True)
            stats = simulate_gemm(device, GOOD, shape)
            assert 0 < stats.tflops <= device.peak_tflops(DType.FP32)

    def test_large_square_near_peak(self, device):
        """LINPACK-style problems should reach >80% of peak (§7.3)."""
        shape = GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        stats = simulate_gemm(device, GOOD, shape)
        assert stats.tflops > 0.8 * device.peak_tflops(DType.FP32)

    def test_time_grows_with_k(self, maxwell):
        t = [
            simulate_gemm(
                maxwell, GOOD, GemmShape(512, 512, k, DType.FP32, False, True)
            ).time_ms
            for k in (256, 1024, 4096)
        ]
        assert t[0] < t[1] < t[2]

    def test_illegal_config_raises(self, maxwell):
        bad = GemmConfig(ms=1, ns=1, ml=256, nl=256, u=8)
        with pytest.raises(IllegalKernelError):
            simulate_gemm(maxwell, bad, GemmShape(512, 512, 512))

    def test_legality_check_can_be_skipped_for_analysis(self, maxwell):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2, kg=64)
        stats = simulate_gemm(
            maxwell, cfg, GemmShape(64, 64, 65536), check_legality=False
        )
        assert stats.time_ms > 0

    def test_stats_fields_consistent(self, maxwell, square_shape):
        stats = simulate_gemm(maxwell, GOOD, square_shape)
        assert stats.useful_flops == square_shape.flops
        assert stats.padded_flops >= stats.useful_flops
        assert 0 <= stats.padding_waste < 1
        assert stats.grid_size == GOOD.grid_size(square_shape)
        assert stats.dram_gbs <= maxwell.mem_bw_gbs * 1.01


class TestWaveQuantization:
    """§8.1: tiles wider than N waste threads on a non-existent output."""

    def test_skinny_n_prefers_narrow_tiles(self, maxwell, skinny_shape):
        wide = GemmConfig(ms=8, ns=8, ml=128, nl=64, u=8, vec=4, db=2)
        narrow = GemmConfig(ms=2, ns=4, ml=64, nl=16, u=16, kg=4, vec=2, db=2)
        t_wide = simulate_gemm(maxwell, wide, skinny_shape)
        t_narrow = simulate_gemm(maxwell, narrow, skinny_shape)
        assert t_narrow.tflops > 1.3 * t_wide.tflops
        assert t_wide.padding_waste > 0.7  # 64-wide tile on N=16

    def test_padding_waste_zero_when_divisible(self, maxwell):
        stats = simulate_gemm(
            maxwell, GOOD, GemmShape(256, 128, 256, DType.FP32)
        )
        assert stats.padding_waste == 0.0


class TestReductionSplitting:
    """§3.2 / §8.2: deep reductions need KL/KG to occupy the machine."""

    def test_kg_split_wins_on_deep_k(self, maxwell, deep_shape):
        no_split = GemmConfig(ms=4, ns=4, ml=32, nl=32, u=8, vec=1, db=1)
        split = no_split.with_(kg=32, db=2)
        t0 = simulate_gemm(maxwell, no_split, deep_shape)
        t1 = simulate_gemm(maxwell, split, deep_shape)
        assert t1.tflops > 5 * t0.tflops

    def test_kg_split_loses_on_square(self, maxwell, square_shape):
        """Atomics and extra store traffic must make KG a bad idea when
        parallelism is already plentiful."""
        split = GOOD.with_(kg=16, vec=4)
        t0 = simulate_gemm(maxwell, GOOD, square_shape)
        t1 = simulate_gemm(maxwell, split, square_shape)
        assert t1.tflops < t0.tflops

    def test_kl_split_speeds_up_single_block_grid(self, maxwell):
        """A 32x32 deep-K problem launches one block; KL quadruples its
        warps and hides the staging latency (§7.3 DeepBench-B analysis)."""
        base = GemmConfig(ms=4, ns=4, ml=32, nl=32, u=8, vec=1, db=1)
        split = base.with_(kl=4)
        shape = GemmShape(32, 32, 60000, DType.FP32, False, True)
        s0 = simulate_gemm(maxwell, base, shape)
        s1 = simulate_gemm(maxwell, split, shape)
        assert s0.grid_size == 1 and s1.grid_size == 1
        assert s1.tflops > s0.tflops


class TestPrecision:
    def test_fp16_packed_beats_fp32_on_pascal(self, pascal):
        shape32 = GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        shape16 = GemmShape(2048, 2048, 2048, DType.FP16, False, True)
        t32 = simulate_gemm(pascal, GOOD, shape32).tflops
        t16 = simulate_gemm(pascal, GOOD, shape16).tflops
        assert t16 > 1.6 * t32

    def test_fp16_unpacked_no_gain(self, pascal):
        shape16 = GemmShape(2048, 2048, 2048, DType.FP16, False, True)
        packed = simulate_gemm(pascal, GOOD, shape16).tflops
        plain = simulate_gemm(
            pascal, GOOD, shape16, allow_fp16x2=False
        ).tflops
        assert packed > 1.6 * plain

    def test_fp64_much_slower_on_maxwell(self, maxwell):
        # db=1: the double-buffered variant blows the register budget in
        # double precision (two-word accumulators), as on real hardware.
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=1)
        s32 = simulate_gemm(
            maxwell, cfg, GemmShape(1024, 1024, 1024, DType.FP32, False, True)
        )
        s64 = simulate_gemm(
            maxwell, cfg, GemmShape(1024, 1024, 1024, DType.FP64, False, True)
        )
        assert s64.tflops < s32.tflops / 8


class TestBenchmarkNoise:
    def test_benchmark_is_deterministic(self, maxwell, square_shape):
        a = benchmark_gemm(maxwell, GOOD, square_shape)
        b = benchmark_gemm(maxwell, GOOD, square_shape)
        assert a == b

    def test_benchmark_near_model(self, maxwell, square_shape):
        model = simulate_gemm(maxwell, GOOD, square_shape).tflops
        measured = benchmark_gemm(maxwell, GOOD, square_shape)
        assert measured == pytest.approx(model, rel=0.3)

    def test_more_reps_tighter(self, maxwell, square_shape):
        model = simulate_gemm(maxwell, GOOD, square_shape).tflops
        errs_1 = []
        errs_9 = []
        for k in (128, 256, 512, 1024, 2048):
            shape = GemmShape(k, k, 256, DType.FP32, False, True)
            m = simulate_gemm(maxwell, GOOD, shape).tflops
            errs_1.append(abs(benchmark_gemm(maxwell, GOOD, shape, reps=1) - m) / m)
            errs_9.append(abs(benchmark_gemm(maxwell, GOOD, shape, reps=16) - m) / m)
        assert sum(errs_9) < sum(errs_1)


class TestConvSimulation:
    CFG = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2,
                     u=8, vec=2, db=2)

    def test_basic(self, device):
        shape = ConvShape.from_output(n=8, p=28, q=28, k=64, c=64, r=3, s=3)
        stats = simulate_conv(device, self.CFG, shape)
        assert 0 < stats.tflops <= device.peak_tflops(DType.FP32)

    def test_conv_illegal_raises(self, maxwell):
        bad = self.CFG.with_(cl=8, u=32)
        shape = ConvShape.from_output(n=8, p=28, q=28, k=64, c=64, r=3, s=3)
        with pytest.raises(IllegalKernelError):
            simulate_conv(maxwell, bad, shape)

    def test_deep_reduction_benefits_from_cg(self, maxwell):
        """A deep-CRS layer with few output tiles starves the grid unless
        the reduction is split (the Conv7/Conv8 mechanism)."""
        shape = ConvShape.from_output(n=1, p=7, q=7, k=32, c=832, r=5, s=5)
        t0 = simulate_conv(maxwell, self.CFG, shape).tflops
        t1 = simulate_conv(maxwell, self.CFG.with_(cg=16), shape).tflops
        assert t1 > 1.5 * t0

    def test_benchmark_deterministic(self, maxwell):
        shape = ConvShape.from_output(n=8, p=28, q=28, k=64, c=64, r=3, s=3)
        assert benchmark_conv(maxwell, self.CFG, shape) == benchmark_conv(
            maxwell, self.CFG, shape
        )
