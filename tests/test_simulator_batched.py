"""Scalar/batched parity of the array-core simulator.

The batched offline pipeline is only admissible if ``benchmark_many`` is
*bit-identical* to per-sample ``benchmark`` — same model chain, same
deterministic noise, same floats.  Three anchors enforce that:

1. golden values captured from the pre-refactor scalar chain (hex floats,
   so equality is exact);
2. property-style parity over random legal (config, shape) draws for every
   registered op;
3. counts parity between the vectorized extraction
   (:mod:`repro.ptx.batch_counts`) and the PTX code generators' per-kernel
   accounting, so the two implementations cannot drift.
"""

import hashlib
import warnings

import numpy as np
import pytest

from repro.core.batched import BatchedGemmShape
from repro.core.ops import get_op
from repro.core.soa import ConvPairArrays, GemmPairArrays
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import get_device
from repro.gpu.simulator import simulate_many
from repro.inference.topk import rerank, rerank_with_report
from repro.ptx.batch_counts import conv_launch_arrays, gemm_launch_arrays
from repro.ptx.conv_codegen import ConvKernel
from repro.ptx.gemm_codegen import GemmKernel
from repro.sampling.dataset import (
    _make_accept,
    fit_generative_models,
    generate_dataset,
)

# ----------------------------------------------------------------------
# Golden measurements captured from the pre-refactor scalar chain
# (benchmark(device, cfg, shape, reps=3), values as exact hex floats).
# ----------------------------------------------------------------------

GOLDEN = [
    ("gemm", "GTX 980 TI",
     {"ms": 4, "ns": 8, "ml": 256, "nl": 64, "u": 32, "ks": 1, "kl": 1,
      "kg": 32, "vec": 4, "db": 1},
     GemmShape(512, 4096, 16384, DType.FP32, False, True),
     "0x1.7b50d12c97b59p+2"),
    ("gemm", "GTX 980 TI",
     {"ms": 4, "ns": 2, "ml": 64, "nl": 64, "u": 32, "ks": 4, "kl": 1,
      "kg": 8, "vec": 2, "db": 1},
     GemmShape(635, 510, 16384, DType.FP32, False, False),
     "0x1.0eadd32b36e1fp+2"),
    ("gemm", "GTX 980 TI",
     {"ms": 16, "ns": 2, "ml": 64, "nl": 32, "u": 16, "ks": 1, "kl": 1,
      "kg": 16, "vec": 2, "db": 2},
     GemmShape(32, 214, 55, DType.FP32, True, True),
     "0x1.0b1ceec76df7dp-4"),
    ("gemm", "GTX 980 TI",
     {"ms": 16, "ns": 4, "ml": 64, "nl": 64, "u": 4, "ks": 2, "kl": 4,
      "kg": 32, "vec": 2, "db": 1},
     GemmShape(1062, 1870, 65536, DType.FP32, False, True),
     "0x1.461d64edd5c2ap+1"),
    ("gemm", "GTX 980 TI",
     {"ms": 2, "ns": 2, "ml": 32, "nl": 16, "u": 16, "ks": 2, "kl": 2,
      "kg": 4, "vec": 2, "db": 1},
     GemmShape(92, 512, 2048, DType.FP32, True, False),
     "0x1.c3813eaac39bap+0"),
    ("gemm", "GTX 980 TI",
     {"ms": 4, "ns": 8, "ml": 128, "nl": 128, "u": 16, "ks": 1, "kl": 1,
      "kg": 2, "vec": 1, "db": 2},
     GemmShape(2048, 75, 226, DType.FP32, False, True),
     "0x1.ccae5ebad310bp+0"),
    # fp16 on Pascal exercises the packed-fp16x2 path.
    ("gemm", "Tesla P100 (PCIE)",
     {"ms": 4, "ns": 8, "ml": 128, "nl": 128, "u": 16, "ks": 2, "kl": 1,
      "kg": 4, "vec": 4, "db": 1},
     GemmShape(398, 24, 127, DType.FP16, False, True),
     "0x1.859f4546b654cp-3"),
    ("gemm", "Tesla P100 (PCIE)",
     {"ms": 8, "ns": 8, "ml": 16, "nl": 64, "u": 8, "ks": 4, "kl": 8,
      "kg": 2, "vec": 4, "db": 1},
     GemmShape(4065, 2048, 891, DType.FP16, True, True),
     "0x1.96f0edc5a3e20p+2"),
    ("gemm", "Tesla P100 (PCIE)",
     {"ms": 2, "ns": 8, "ml": 32, "nl": 32, "u": 2, "ks": 2, "kl": 4,
      "kg": 32, "vec": 1, "db": 2},
     GemmShape(25, 155, 65536, DType.FP16, True, True),
     "0x1.1c1966c53ba6dp+2"),
    ("gemm", "Tesla P100 (PCIE)",
     {"ms": 8, "ns": 2, "ml": 32, "nl": 64, "u": 16, "ks": 1, "kl": 1,
      "kg": 8, "vec": 2, "db": 2},
     GemmShape(1024, 256, 128, DType.FP16, True, True),
     "0x1.e04c2922092efp+1"),
    ("conv", "Tesla P100 (PCIE)",
     {"kt": 8, "pt": 2, "qt": 2, "nt": 2, "kb": 128, "pb": 4, "qb": 4,
      "nb": 4, "u": 2, "cs": 1, "cl": 1, "cg": 1, "vec": 1, "db": 1},
     ConvShape(n=11, c=177, h=35, w=85, k=709, r=20, s=20,
               dtype=DType.FP32),
     "0x1.aef9d689838a5p+2"),
    ("conv", "Tesla P100 (PCIE)",
     {"kt": 8, "pt": 4, "qt": 1, "nt": 1, "kb": 8, "pb": 16, "qb": 1,
      "nb": 2, "u": 4, "cs": 2, "cl": 8, "cg": 2, "vec": 2, "db": 1},
     ConvShape(n=15, c=11, h=45, w=66, k=256, r=11, s=3, dtype=DType.FP32),
     "0x1.614ea4e0a8edfp+1"),
    ("conv", "Tesla P100 (PCIE)",
     {"kt": 2, "pt": 2, "qt": 2, "nt": 4, "kb": 32, "pb": 4, "qb": 2,
      "nb": 4, "u": 8, "cs": 4, "cl": 8, "cg": 32, "vec": 2, "db": 2},
     ConvShape(n=1, c=701, h=20, w=60, k=771, r=7, s=1, dtype=DType.FP32),
     "0x1.6844bd847c74cp-1"),
    ("conv", "Tesla P100 (PCIE)",
     {"kt": 4, "pt": 1, "qt": 1, "nt": 2, "kb": 32, "pb": 4, "qb": 2,
      "nb": 4, "u": 8, "cs": 1, "cl": 4, "cg": 1, "vec": 2, "db": 1},
     ConvShape(n=16, c=16, h=142, w=205, k=288, r=7, s=1, dtype=DType.FP32),
     "0x1.fc913f1d0f8eap+1"),
    ("conv", "Tesla P100 (PCIE)",
     {"kt": 4, "pt": 1, "qt": 1, "nt": 4, "kb": 64, "pb": 1, "qb": 2,
      "nb": 8, "u": 8, "cs": 4, "cl": 8, "cg": 2, "vec": 1, "db": 1},
     ConvShape(n=4, c=85, h=64, w=20, k=1024, r=1, s=5, dtype=DType.FP32),
     "0x1.1d57a5d7eec34p+1"),
    ("bgemm", "Tesla P100 (PCIE)",
     {"ms": 4, "ns": 4, "ml": 128, "nl": 32, "u": 16, "ks": 1, "kl": 1,
      "kg": 32, "vec": 1, "db": 1},
     BatchedGemmShape(batch=8,
                      base=GemmShape(24, 156, 64, DType.FP32, False, True)),
     "0x1.d2c8f02ad1df3p-5"),
    ("bgemm", "Tesla P100 (PCIE)",
     {"ms": 2, "ns": 4, "ml": 64, "nl": 32, "u": 16, "ks": 4, "kl": 1,
      "kg": 4, "vec": 1, "db": 1},
     BatchedGemmShape(batch=64,
                      base=GemmShape(37, 403, 512, DType.FP32, True, False)),
     "0x1.d240f45e1e23cp+1"),
    ("bgemm", "Tesla P100 (PCIE)",
     {"ms": 16, "ns": 4, "ml": 64, "nl": 64, "u": 32, "ks": 2, "kl": 1,
      "kg": 64, "vec": 4, "db": 1},
     BatchedGemmShape(batch=10,
                      base=GemmShape(512, 512, 256, DType.FP32, False, True)),
     "0x1.44c9e02e3bf92p-1"),
    ("bgemm", "Tesla P100 (PCIE)",
     {"ms": 4, "ns": 8, "ml": 64, "nl": 16, "u": 16, "ks": 1, "kl": 2,
      "kg": 32, "vec": 4, "db": 1},
     BatchedGemmShape(batch=64,
                      base=GemmShape(32, 16, 2048, DType.FP32, False, True)),
     "0x1.9b5d877f7b249p+0"),
    ("bgemm", "Tesla P100 (PCIE)",
     {"ms": 8, "ns": 8, "ml": 64, "nl": 32, "u": 4, "ks": 1, "kl": 4,
      "kg": 4, "vec": 1, "db": 2},
     BatchedGemmShape(batch=25,
                      base=GemmShape(128, 572, 29, DType.FP32, True, False)),
     "0x1.25f55c4ca9c2ap+0"),
]

#: sha256 of Dataset.x / Dataset.y bytes for the legacy (batched=False)
#: generation path, captured pre-refactor: same seed -> same dataset.
DATASET_GOLDEN = [
    ("gemm", "GTX 980 TI", 12, 7,
     "4cd3768708320a38539bdfb987a84f219fc310656749aa5a54d4f21d7fa70f6f",
     "bc749524d0572e3f79c6a25450ae0682183603e67c671c575a451acf2cd91dcf"),
    ("conv", "Tesla P100 (PCIE)", 8, 9,
     "e51899c4559dfe1000f6575ac0d70247a05aae5fa0f078013daf9c364abf4dcf",
     "32bb7082807f85b8039585f07440160f64151813ec552d2dca056e46d898f29b"),
]


class TestGoldenParity:
    """Pre-refactor scalar values survive both paths, bit for bit."""

    @pytest.mark.parametrize(
        "op,dev,cfg_dict,shape,hexval",
        GOLDEN,
        ids=[f"{g[0]}-{i}" for i, g in enumerate(GOLDEN)],
    )
    def test_scalar_matches_golden(self, op, dev, cfg_dict, shape, hexval):
        spec = get_op(op)
        cfg = spec.config_from_point(cfg_dict)
        got = spec.benchmark(get_device(dev), cfg, shape, reps=3)
        assert got == float.fromhex(hexval)

    def test_batched_matches_golden(self):
        # Group by (op, device) so every golden rides one batched call.
        groups: dict[tuple, list] = {}
        for op, dev, cfg_dict, shape, hexval in GOLDEN:
            groups.setdefault((op, dev), []).append((cfg_dict, shape, hexval))
        for (op, dev), rows in groups.items():
            spec = get_op(op)
            cfgs = [spec.config_from_point(d) for d, _, _ in rows]
            shapes = [s for _, s, _ in rows]
            got = spec.benchmark_pairs(
                get_device(dev), cfgs, shapes, reps=3
            )
            want = np.array([float.fromhex(h) for _, _, h in rows])
            np.testing.assert_array_equal(got, want)


def _legal_pairs(device, op, dtype, count, seed):
    """Random legal (config, shape) draws via the generative model."""
    spec = get_op(op)
    rng = np.random.default_rng(seed)
    samplers = fit_generative_models(
        device, op=op, dtypes=(dtype,), rng=rng, target_accepted=60
    )
    shape_sampler = spec.make_shape_sampler((dtype,))
    accept = _make_accept(device, spec, dtype)
    pairs = []
    while len(pairs) < count:
        shape = shape_sampler(rng)
        point = samplers[dtype].sample_legal(accept, rng)
        pairs.append((spec.config_from_point(point), shape))
    return pairs


class TestPropertyParity:
    """benchmark_many == per-sample benchmark, bit for bit, for every op."""

    @pytest.mark.parametrize(
        "op,dev,dtype,seed",
        [
            ("gemm", "GTX 980 TI", DType.FP32, 0),
            ("gemm", "Tesla P100 (PCIE)", DType.FP16, 1),
            ("gemm", "Tesla P100 (PCIE)", DType.FP64, 2),
            ("conv", "GTX 980 TI", DType.FP32, 3),
            ("conv", "Tesla P100 (PCIE)", DType.FP16, 4),
            ("bgemm", "Tesla P100 (PCIE)", DType.FP32, 5),
        ],
    )
    def test_benchmark_many_bitwise(self, op, dev, dtype, seed):
        device = get_device(dev)
        spec = get_op(op)
        pairs = _legal_pairs(device, op, dtype, 25, seed)
        cfgs = [c for c, _ in pairs]
        shapes = [s for _, s in pairs]
        for reps, sigma in ((1, 0.06), (3, 0.06), (2, 0.0)):
            batched = spec.benchmark_pairs(
                device, cfgs, shapes, reps=reps, sigma=sigma
            )
            scalar = np.array([
                spec.benchmark(device, c, s, reps=reps, sigma=sigma)
                for c, s in pairs
            ])
            np.testing.assert_array_equal(batched, scalar)

    def test_simulate_many_times_match_scalar(self):
        device = get_device("Tesla P100 (PCIE)")
        spec = get_op("gemm")
        pairs = _legal_pairs(device, "gemm", DType.FP32, 15, 6)
        stats = simulate_many(
            device, "gemm", [c for c, _ in pairs], [s for _, s in pairs]
        )
        for i, (cfg, shape) in enumerate(pairs):
            one = spec.simulate(device, cfg, shape)
            row = stats.row(i)
            assert row.time_ms == one.time_ms
            assert row.limiter == one.limiter
            assert row.occupancy == one.occupancy
            assert row.traffic == one.traffic
            assert row.grid_size == one.grid_size
            assert row.waves == one.waves


class TestCountsParity:
    """Vectorized counts extraction == the PTX generators' accounting."""

    def test_gemm_counts_match_codegen(self):
        device = get_device("Tesla P100 (PCIE)")
        for dtype, seed in ((DType.FP32, 10), (DType.FP16, 11)):
            pairs = _legal_pairs(device, "gemm", dtype, 12, seed)
            cfgs = [c for c, _ in pairs]
            shapes = [s for _, s in pairs]
            for mode in ("predicated", "checked", "padded"):
                launch = gemm_launch_arrays(
                    device, GemmPairArrays.from_pairs(cfgs, shapes),
                    bounds_mode=mode,
                )
                for i, (cfg, shape) in enumerate(pairs):
                    kernel = GemmKernel(
                        cfg=cfg, shape=shape, device=device, bounds_mode=mode
                    )
                    assert launch.counts.row(i) == kernel.block_counts()
                    kc = kernel.kernel_counts()
                    assert int(launch.grid_size[i]) == kc.grid_size
                    assert (
                        int(launch.threads_per_block[i])
                        == kc.threads_per_block
                    )

    def test_conv_counts_match_codegen(self):
        device = get_device("GTX 980 TI")
        pairs = _legal_pairs(device, "conv", DType.FP32, 12, 12)
        cfgs = [c for c, _ in pairs]
        shapes = [s for _, s in pairs]
        for mode in ("predicated", "checked"):
            launch = conv_launch_arrays(
                device, ConvPairArrays.from_pairs(cfgs, shapes),
                bounds_mode=mode,
            )
            for i, (cfg, shape) in enumerate(pairs):
                kernel = ConvKernel(
                    cfg=cfg, shape=shape, device=device, bounds_mode=mode
                )
                assert launch.counts.row(i) == kernel.block_counts()
                assert int(launch.grid_size[i]) == cfg.grid_size(shape)


class TestIllegalHandling:
    """Illegal pairs: scalar raises, batched marks NaN — never silently."""

    def test_benchmark_many_nans_illegal_rows(self):
        from repro.gpu.simulator import IllegalKernelError

        device = get_device("Tesla P100 (PCIE)")
        spec = get_op("gemm")
        good_cfg, good_shape = _legal_pairs(
            device, "gemm", DType.FP32, 1, 20
        )[0]
        # threads = 8*8 = 64 but the 512x512 staging tile cannot be split
        # evenly — illegal, and far over the shared-memory budget too.
        bad_cfg = spec.config_from_point(
            {"ms": 8, "ns": 8, "ml": 64, "nl": 64, "u": 32, "ks": 1,
             "kl": 8, "kg": 1, "vec": 1, "db": 2}
        )
        with pytest.raises(IllegalKernelError):
            spec.benchmark(device, bad_cfg, good_shape)
        out = spec.benchmark_pairs(
            device,
            [good_cfg, bad_cfg, good_cfg],
            [good_shape, good_shape, good_shape],
        )
        assert np.isnan(out[1])
        assert np.isfinite(out[[0, 2]]).all()
        assert out[0] == out[2]

    def test_rerank_counts_and_warns_on_drops(self):
        from repro.inference.search import Prediction

        device = get_device("Tesla P100 (PCIE)")
        spec = get_op("gemm")
        pairs = _legal_pairs(device, "gemm", DType.FP32, 4, 21)
        shape = pairs[0][1]
        bad_cfg = spec.config_from_point(
            {"ms": 8, "ns": 8, "ml": 64, "nl": 64, "u": 32, "ks": 1,
             "kl": 8, "kg": 1, "vec": 1, "db": 2}
        )
        cands = [Prediction(config=c, predicted_tflops=1.0)
                 for c, _ in pairs] + [
            Prediction(config=bad_cfg, predicted_tflops=9.9)
        ]
        report = rerank_with_report(device, shape, cands)
        assert report.dropped == 1
        assert report.evaluated == 5
        assert len(report.ranked) == 4
        with pytest.warns(RuntimeWarning, match="dropped 1 of 5"):
            ranked = rerank(device, shape, cands)
        assert [r.measured_tflops for r in ranked] == [
            r.measured_tflops for r in report.ranked
        ]

    def test_rerank_clean_shortlist_stays_silent(self):
        from repro.inference.search import Prediction

        device = get_device("Tesla P100 (PCIE)")
        pairs = _legal_pairs(device, "gemm", DType.FP32, 5, 22)
        shape = pairs[0][1]
        cands = [Prediction(config=c, predicted_tflops=1.0)
                 for c, _ in pairs]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ranked = rerank(device, shape, cands)
        assert len(ranked) == 5


class TestDatasetDeterminism:
    """Fixed seed -> identical Dataset; legacy path -> pre-refactor bytes."""

    @pytest.mark.parametrize(
        "op,dev,n,seed,x_sha,y_sha",
        DATASET_GOLDEN,
        ids=[g[0] for g in DATASET_GOLDEN],
    )
    def test_legacy_path_reproduces_prerefactor_dataset(
        self, op, dev, n, seed, x_sha, y_sha
    ):
        ds = generate_dataset(
            get_device(dev), op, n, np.random.default_rng(seed),
            dtypes=(DType.FP32,), batched=False,
        )
        assert hashlib.sha256(ds.x.tobytes()).hexdigest() == x_sha
        assert hashlib.sha256(ds.y.tobytes()).hexdigest() == y_sha

    @pytest.mark.parametrize("batched", [False, True])
    def test_fixed_seed_is_deterministic(self, batched):
        device = get_device("GTX 980 TI")
        runs = [
            generate_dataset(
                device, "gemm", 40, np.random.default_rng(13),
                dtypes=(DType.FP32,), batched=batched,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0].x, runs[1].x)
        np.testing.assert_array_equal(runs[0].y, runs[1].y)
        assert runs[0].feature_names == runs[1].feature_names

    def test_batched_rows_are_scalar_chain_measurements(self):
        """Every batched-path y is a scalar-chain benchmark of its x row."""
        device = get_device("GTX 980 TI")
        spec = get_op("gemm")
        rng = np.random.default_rng(14)
        samplers = fit_generative_models(
            device, op="gemm", dtypes=(DType.FP32,), rng=rng,
            target_accepted=60,
        )
        # Re-run the batched path's sampling with a cloned rng to recover
        # the (config, shape) pairs, then check each y against the scalar
        # chain.
        ds = generate_dataset(
            device, "gemm", 30, np.random.default_rng(99),
            samplers=samplers, dtypes=(DType.FP32,),
        )
        n_cfg = spec.n_config_features
        for i in range(len(ds)):
            cfg = spec.config_from_point(
                dict(zip(spec.config_features, ds.x[i, :n_cfg].astype(int)))
            )
            m, n, k, dsize, ta, tb = ds.x[i, n_cfg:]
            shape = GemmShape(
                int(m), int(n), int(k), DType(int(dsize)),
                bool(int(ta) - 1), bool(int(tb) - 1),
            )
            want = np.log2(max(spec.benchmark(device, cfg, shape), 1e-6))
            assert ds.y[i] == want
