"""Metamorphic property tests of the simulated GPU.

Hypothesis generates random legal kernels and shapes; the simulator must
obey physics-flavoured invariants regardless of the sample: throughput
bounded by peak and bandwidth, monotone cost in problem volume, and
sane diagnostics.
"""

from hypothesis import given, settings, strategies as st

from repro.core.legality import is_legal_gemm
from repro.core.types import DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.gpu.simulator import simulate_gemm

from tests.test_legality import gemm_configs


def shapes() -> st.SearchStrategy[GemmShape]:
    return st.builds(
        GemmShape,
        m=st.integers(16, 4096),
        n=st.integers(16, 4096),
        k=st.integers(16, 40000),
        dtype=st.sampled_from(list(DType)),
        ta=st.booleans(),
        tb=st.booleans(),
    )


class TestPhysicalBounds:
    @given(cfg=gemm_configs(), shape=shapes())
    @settings(max_examples=120, deadline=None)
    def test_throughput_bounded_by_peak(self, cfg, shape):
        for device in (GTX_980_TI, TESLA_P100):
            if not is_legal_gemm(cfg, shape.dtype, device):
                continue
            stats = simulate_gemm(device, cfg, shape)
            assert 0 < stats.tflops <= device.peak_tflops(shape.dtype) * 1.001

    @given(cfg=gemm_configs(), shape=shapes())
    @settings(max_examples=120, deadline=None)
    def test_dram_bounded_by_bandwidth(self, cfg, shape):
        device = GTX_980_TI
        if not is_legal_gemm(cfg, shape.dtype, device):
            return
        stats = simulate_gemm(device, cfg, shape)
        assert stats.dram_gbs <= device.mem_bw_gbs * 1.001

    @given(cfg=gemm_configs(), shape=shapes())
    @settings(max_examples=100, deadline=None)
    def test_diagnostics_sane(self, cfg, shape):
        device = TESLA_P100
        if not is_legal_gemm(cfg, shape.dtype, device):
            return
        stats = simulate_gemm(device, cfg, shape)
        assert 0.0 <= stats.padding_waste < 1.0
        assert 0.0 < stats.occupancy.occupancy <= 1.0
        assert 0.0 <= stats.traffic.l2_hit_rate <= 0.98
        assert stats.waves > 0
        assert stats.grid_size == cfg.grid_size(shape)


class TestMonotonicity:
    @given(cfg=gemm_configs(), shape=shapes())
    @settings(max_examples=80, deadline=None)
    def test_doubling_k_never_speeds_up(self, cfg, shape):
        device = GTX_980_TI
        if not is_legal_gemm(cfg, shape.dtype, device) or shape.k > 20000:
            return
        bigger = GemmShape(
            shape.m, shape.n, shape.k * 2, shape.dtype, shape.ta, shape.tb
        )
        t1 = simulate_gemm(device, cfg, shape).time_ms
        t2 = simulate_gemm(device, cfg, bigger).time_ms
        assert t2 >= t1 * 0.999

    @given(cfg=gemm_configs(), shape=shapes())
    @settings(max_examples=80, deadline=None)
    def test_checked_mode_never_faster(self, cfg, shape):
        """CUDA-C-style bounds checks can only add instructions (§8.3)."""
        device = GTX_980_TI
        if not is_legal_gemm(cfg, shape.dtype, device):
            return
        pred = simulate_gemm(device, cfg, shape, bounds_mode="predicated")
        chk = simulate_gemm(device, cfg, shape, bounds_mode="checked")
        assert chk.time_ms >= pred.time_ms * 0.999

    @given(cfg=gemm_configs(), shape=shapes())
    @settings(max_examples=60, deadline=None)
    def test_unpacked_fp16_never_faster(self, cfg, shape):
        device = TESLA_P100
        shape16 = GemmShape(shape.m, shape.n, shape.k, DType.FP16,
                            shape.ta, shape.tb)
        if not is_legal_gemm(cfg, DType.FP16, device):
            return
        packed = simulate_gemm(device, cfg, shape16, allow_fp16x2=True)
        plain = simulate_gemm(device, cfg, shape16, allow_fp16x2=False)
        assert plain.time_ms >= packed.time_ms * 0.999
