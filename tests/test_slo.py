"""Tests for the SLO-driven config compiler (`repro.service.slo`).

Covers every guard-rail rejection reason (one failing spec per rail,
plus a multi-violation spec asserting the aggregated report lists all
of them), the derivation invariants of the three calibrated workload
presets, ``AsyncEngine.from_slo`` boot + replay against a trained
tuner, the raw-knob validator backing the ``serve`` CLI, and the CLI
wiring itself (`--slo-*` flags, plan printing, pre-boot rejection).
"""

import asyncio

import pytest

from repro.core.types import DType, GemmShape
from repro.service.async_engine import AsyncEngine, BackpressureError
from repro.service.engine import Engine, KernelRequest
from repro.service.slo import (
    MAX_WINDOW_MS,
    MEMORY_FLOOR_MB,
    MIN_WINDOW_MS,
    SLOConfigError,
    ServingPlan,
    ServingSLO,
    WORKLOAD_PROFILES,
    check_serving_knobs,
    validate_serving_knobs,
)

SHAPES = [
    GemmShape(512, 512, 512, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 8192, DType.FP32, False, True),
    GemmShape(128, 256, 1024, DType.FP32, True, False),
]


# ----------------------------------------------------------------------
# Compilation: derivations
# ----------------------------------------------------------------------

class TestCompile:
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_PROFILES))
    def test_presets_compile_to_consistent_plans(self, workload):
        plan = ServingSLO(
            target_qps=200, p95_ms=50, workload=workload
        ).compile()
        assert isinstance(plan, ServingPlan)
        # The window is a fraction of the p95 budget, inside the clamp.
        assert MIN_WINDOW_MS <= plan.window_ms <= MAX_WINDOW_MS
        assert plan.window_ms <= plan.slo.p95_ms
        # Admission ordering: batch <= pending, queue <= pending.
        assert 1 <= plan.max_batch <= plan.max_pending
        assert plan.max_batch <= plan.max_queue <= plan.max_pending
        # Cache sized for the profile's distinct-shape estimate.
        profile = WORKLOAD_PROFILES[workload]
        assert plan.lru_capacity >= min(profile.distinct_shapes, 256)
        # The deadline recommendation is a multiple of the budget.
        assert plan.deadline_ms >= plan.slo.p95_ms
        assert plan.breaker_threshold == profile.breaker_threshold
        # No worker tier requested: no supervision knobs derived.
        assert plan.workers == 0
        assert plan.worker_timeout_s is None
        assert plan.worker_heartbeat_s is None
        # Every derived knob shows up in the derivation trace.
        traced = {knob for knob, _, _ in plan.derivation}
        assert {"window_ms", "max_batch", "max_pending",
                "lru_capacity", "deadline_ms"} <= traced

    def test_bursty_absorbs_larger_peaks_than_steady(self):
        steady = ServingSLO(200, 50, workload="steady").compile()
        bursty = ServingSLO(200, 50, workload="bursty").compile()
        assert bursty.max_pending > steady.max_pending
        assert bursty.window_ms > steady.window_ms
        assert bursty.breaker_threshold > steady.breaker_threshold

    def test_cold_heavy_sizes_cache_for_large_populations(self):
        steady = ServingSLO(200, 50, workload="steady").compile()
        cold = ServingSLO(200, 50, workload="cold-heavy").compile()
        assert cold.lru_capacity > steady.lru_capacity
        assert cold.window_ms < steady.window_ms
        assert cold.breaker_threshold < steady.breaker_threshold

    def test_worker_count_flows_through(self):
        plan = ServingSLO(200, 50, workers=3).compile()
        assert plan.workers == 3
        assert plan.worker_timeout_s is not None
        assert plan.worker_timeout_s > 0
        assert plan.worker_heartbeat_s is not None
        assert plan.worker_heartbeat_s < plan.worker_timeout_s
        kwargs = plan.async_kwargs()
        assert kwargs["workers"] == 3
        assert kwargs["worker_timeout_s"] == plan.worker_timeout_s

    def test_kwargs_split_cleanly_across_constructors(self):
        """async_kwargs boots AsyncEngine, engine_kwargs boots Engine —
        with no overlap shadowing (the two max_workers are distinct)."""
        plan = ServingSLO(200, 50).compile()
        engine = Engine(max_workers=0)
        front = AsyncEngine(engine, own_engine=True,
                            **plan.async_kwargs())
        front.close()
        inner = Engine(**plan.engine_kwargs())
        inner.close()

    def test_describe_names_all_buckets(self):
        plan = ServingSLO(200, 50).compile()
        text = plan.describe()
        assert "SLO inputs" in text
        assert "derived" in text
        assert "expert" in text
        assert "pinned" in text
        assert "window_ms" in text
        assert "max_shards" in text


# ----------------------------------------------------------------------
# Guard rails: one failing spec per rail + the aggregated report
# ----------------------------------------------------------------------

RAIL_SPECS = {
    "qps-positive": ServingSLO(target_qps=0, p95_ms=50),
    "p95-positive": ServingSLO(target_qps=100, p95_ms=-1),
    "memory-floor": ServingSLO(
        target_qps=100, p95_ms=50, memory_mb=MEMORY_FLOOR_MB / 4
    ),
    "unknown-profile": ServingSLO(
        target_qps=100, p95_ms=50, workload="spiky"
    ),
    "workers-bound": ServingSLO(target_qps=100, p95_ms=50, workers=-1),
    "window-vs-p95": ServingSLO(
        target_qps=100, p95_ms=2 * MIN_WINDOW_MS * 0.7
    ),
    "pending-vs-memory": ServingSLO(
        target_qps=50_000, p95_ms=2000, memory_mb=64
    ),
    "lru-vs-shapes": ServingSLO(
        target_qps=10, p95_ms=100, memory_mb=64, workload="cold-heavy"
    ),
}


class TestGuardRails:
    @pytest.mark.parametrize("rail", sorted(RAIL_SPECS))
    def test_each_rail_fires_alone(self, rail):
        with pytest.raises(SLOConfigError) as exc_info:
            RAIL_SPECS[rail].compile()
        err = exc_info.value
        assert err.rails == (rail,)
        # The report names the rail and reads as one violation.
        assert f"[{rail}]" in str(err)
        assert "1 guard-rail violation" in str(err)

    def test_multi_violation_report_lists_every_rail(self):
        spec = ServingSLO(
            target_qps=-5,
            p95_ms=0.2,
            memory_mb=1,
            workload="nope",
            workers=-3,
        )
        with pytest.raises(SLOConfigError) as exc_info:
            spec.compile()
        err = exc_info.value
        expected = {
            "qps-positive",
            "memory-floor",
            "unknown-profile",
            "workers-bound",
            "window-vs-p95",
        }
        assert set(err.rails) == expected
        report = str(err)
        assert f"{len(expected)} guard-rail violation" in report
        for rail in expected:
            assert f"[{rail}]" in report

    def test_error_is_typed_and_carries_violations(self):
        with pytest.raises(SLOConfigError) as exc_info:
            ServingSLO(0, 50).compile()
        err = exc_info.value
        assert len(err.violations) == 1
        assert err.violations[0].rail == "qps-positive"
        assert err.violations[0].message


# ----------------------------------------------------------------------
# Raw-knob validator (backs the serve CLI)
# ----------------------------------------------------------------------

KNOB_CASES = {
    "knob-window": {"window_ms": -1.0},
    "knob-max-batch": {"max_batch": 0},
    "knob-max-pending": {"max_pending": -2},
    "batch-vs-pending": {"max_batch": 64, "max_pending": 8},
    "knob-deadline": {"deadline_ms": -5.0},
    "deadline-vs-window": {"deadline_ms": 1.0, "window_ms": 2.0},
    "knob-cascade-keep": {"cascade_keep": 0},
    "knob-workers": {"workers": -1},
    "knob-concurrency": {"concurrency": 0},
    "knob-passes": {"passes": 0},
    "knob-k": {"k": 0},
    "knob-reps": {"reps": -1},
    "knob-online-every": {"online_every": 0},
    "knob-online-epochs": {"online_epochs": 0},
    "knob-breaker-threshold": {"breaker_threshold": 0},
    "knob-breaker-reset": {"breaker_reset_s": 0.0},
}


class TestKnobValidator:
    @pytest.mark.parametrize("rail", sorted(KNOB_CASES))
    def test_each_knob_rail_fires(self, rail):
        violations = validate_serving_knobs(**KNOB_CASES[rail])
        assert [v.rail for v in violations] == [rail]

    def test_valid_knobs_pass(self):
        assert validate_serving_knobs(
            window_ms=2.0, max_batch=32, max_pending=1024,
            deadline_ms=100.0, cascade_keep=20, workers=0,
            concurrency=8, passes=2, k=10, reps=2,
            online_every=64, online_epochs=4,
            breaker_threshold=8, breaker_reset_s=30.0,
        ) == []
        check_serving_knobs(window_ms=0.0, max_batch=1, max_pending=1)

    def test_check_aggregates_into_typed_error(self):
        with pytest.raises(SLOConfigError) as exc_info:
            check_serving_knobs(
                deadline_ms=-5.0, cascade_keep=0,
                max_batch=64, max_pending=8,
            )
        assert set(exc_info.value.rails) == {
            "knob-deadline", "knob-cascade-keep", "batch-vs-pending",
        }


# ----------------------------------------------------------------------
# from_slo: boot + preset replay against a trained tuner
# ----------------------------------------------------------------------

def _replay(engine: AsyncEngine, requests, concurrency=8):
    async def main():
        replies: list = [None] * len(requests)
        work = iter(enumerate(requests))

        async def client() -> None:
            for i, req in work:
                while True:
                    try:
                        replies[i] = await engine.query(req)
                        break
                    except BackpressureError as exc:
                        if not exc.transient:
                            raise
                        await asyncio.sleep(0.002)

        await asyncio.gather(*(client() for _ in range(concurrency)))
        stats = engine.stats()
        await engine.aclose()
        return replies, stats

    return asyncio.run(main())


class TestFromSlo:
    def test_boots_fully_derived_config(self, trained_gemm_tuner):
        """An SLO spec alone configures the whole front door, and the
        compiled config answers identically to the sync Engine."""
        slo = ServingSLO(target_qps=200, p95_ms=50, memory_mb=256)
        plan = slo.compile()
        inner = Engine(max_workers=0, **{
            k: v for k, v in plan.engine_kwargs().items()
            if k != "max_workers"
        })
        inner.register(trained_gemm_tuner)
        engine = AsyncEngine.from_slo(inner, slo, own_engine=True)
        assert engine.plan is not None
        assert engine.plan.window_ms == plan.window_ms

        reference = Engine(max_workers=0)
        reference.register(trained_gemm_tuner)
        requests = [
            KernelRequest("gemm", s, k=10, reps=2) for s in SHAPES[:2]
        ]
        want = [reference.query(r) for r in requests]
        reference.close()

        replies, stats = _replay(engine, requests * 4)
        assert all(r is not None for r in replies)
        for got, ref in zip(replies, want * 4):
            assert got.config == ref.config
        # The warm path met the declared p95 budget.
        assert stats.hit_p95_ms <= slo.p95_ms

    @pytest.mark.parametrize("workload", sorted(WORKLOAD_PROFILES))
    def test_preset_replay_meets_budget(self, trained_gemm_tuner,
                                        workload):
        """Each calibrated preset boots and sustains a zipf-style
        replay (hot head + cold tail, mirroring the serving bench)
        within its declared warm-path budget."""
        slo = ServingSLO(
            target_qps=200, p95_ms=50, memory_mb=256, workload=workload
        )
        plan = slo.compile()
        inner = Engine(max_workers=0, lru_capacity=plan.lru_capacity,
                       cascade=plan.cascade,
                       cascade_keep=plan.cascade_keep)
        inner.register(trained_gemm_tuner)
        engine = AsyncEngine.from_slo(inner, plan, own_engine=True)

        # Zipf-flavored: the head shape dominates, every shape appears.
        requests = [
            KernelRequest("gemm", SHAPES[i], k=10, reps=2)
            for i in [0, 0, 0, 0, 1, 0, 1, 2, 0, 1, 0, 2]
        ]
        replies, stats = _replay(engine, requests)
        assert all(r is not None for r in replies)
        configs = {r.config for i, r in zip([0] * 4, replies[:1])}
        assert len(configs) == 1
        assert stats.hit_p95_ms <= slo.p95_ms
        assert stats.batch_failures == 0

    def test_from_slo_opens_model_dir(self, trained_gemm_tuner,
                                      tmp_path):
        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")
        engine = AsyncEngine.from_slo(
            tmp_path, ServingSLO(target_qps=100, p95_ms=40)
        )
        try:
            assert engine.plan is not None
            assert engine.engine.devices() == ("Tesla P100 (PCIE)",)
        finally:
            engine.close()

    def test_infeasible_spec_fails_before_boot(self, tmp_path):
        """Nothing is opened or spawned when compile() rejects."""
        with pytest.raises(SLOConfigError) as exc_info:
            AsyncEngine.from_slo(
                tmp_path / "never-created",
                ServingSLO(target_qps=0, p95_ms=-1),
            )
        assert set(exc_info.value.rails) == {
            "qps-positive", "p95-positive",
        }
        assert not (tmp_path / "never-created").exists()

    def test_rejects_non_slo_payloads(self):
        with pytest.raises(TypeError):
            AsyncEngine.from_slo("models/", {"target_qps": 100})


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

class TestServeSloCli:
    def test_slo_serve_prints_plan_and_replays(self, trained_gemm_tuner,
                                               tmp_path, capsys):
        from repro.harness.cli import main

        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")
        rc = main([
            "serve", "--models", str(tmp_path), "--network", "rnn",
            "--passes", "2", "--concurrency", "8", "-k", "10",
            "--reps", "2", "--slo-qps", "200", "--slo-p95-ms", "50",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "compiled serving plan" in out
        assert "window_ms" in out        # the derivation trace printed
        assert "served 32 requests" in out
        assert "req/s" in out

    def test_infeasible_slo_fails_before_boot(self, tmp_path, capsys):
        from repro.harness.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main([
                "serve", "--models", str(tmp_path), "--network", "rnn",
                "--slo-qps", "-5", "--slo-p95-ms", "0.2",
            ])
        msg = str(exc_info.value)
        assert "[qps-positive]" in msg
        assert "[window-vs-p95]" in msg
        assert "served" not in capsys.readouterr().out

    def test_slo_flags_must_come_together(self, tmp_path):
        from repro.harness.cli import main

        with pytest.raises(SystemExit, match="together"):
            main([
                "serve", "--models", str(tmp_path), "--network", "rnn",
                "--slo-qps", "200",
            ])

    def test_raw_knobs_rejected_with_aggregated_report(self, tmp_path):
        from repro.harness.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main([
                "serve", "--models", str(tmp_path), "--network", "rnn",
                "--deadline-ms", "-5", "--cascade-keep", "0",
                "--max-batch", "64", "--max-pending", "8",
            ])
        msg = str(exc_info.value)
        assert "3 guard-rail violation" in msg
        assert "[knob-deadline]" in msg
        assert "[knob-cascade-keep]" in msg
        assert "[batch-vs-pending]" in msg
