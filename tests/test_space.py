"""Unit tests for repro.core.space."""

import numpy as np
import pytest

from repro.core.config import GemmConfig
from repro.core.space import (
    CONV_SPACE,
    GEMM_SPACE,
    ParamSpace,
    enumerate_legal,
    table1_space,
)


class TestParamSpace:
    def test_gemm_space_has_ten_parameters(self):
        # §4: "there are 10 tuning parameters" for GEMM.
        assert len(GEMM_SPACE.params) == 10
        assert GEMM_SPACE.names == GemmConfig.param_names()

    def test_conv_space_has_fourteen_parameters(self):
        assert len(CONV_SPACE.params) == 14

    def test_size_is_product(self):
        space = ParamSpace("t", (("a", (1, 2)), ("b", (1, 2, 3))))
        assert space.size == 6

    def test_iter_points_covers_space(self):
        space = ParamSpace("t", (("a", (1, 2)), ("b", (4, 8))))
        points = list(space.iter_points())
        assert len(points) == 4
        assert {tuple(sorted(p.items())) for p in points} == {
            (("a", 1), ("b", 4)),
            (("a", 1), ("b", 8)),
            (("a", 2), ("b", 4)),
            (("a", 2), ("b", 8)),
        }

    def test_values_lookup(self):
        assert GEMM_SPACE.values("ms") == (1, 2, 4, 8, 16)
        with pytest.raises(KeyError):
            GEMM_SPACE.values("nope")

    def test_contains(self):
        point = {n: v[0] for n, v in GEMM_SPACE.params}
        assert GEMM_SPACE.contains(point)
        point["ms"] = 3
        assert not GEMM_SPACE.contains(point)

    def test_all_values_are_powers_of_two(self):
        for space in (GEMM_SPACE, CONV_SPACE):
            for name, vals in space.params:
                for v in vals:
                    assert v & (v - 1) == 0, f"{space.name}.{name}={v}"

    def test_grid_matches_iter_points_order(self):
        space = ParamSpace(
            "t", (("a", (1, 2)), ("b", (4, 8, 16)), ("c", (1, 2)))
        )
        cols = space.grid()
        assert set(cols) == {"a", "b", "c"}
        assert all(c.dtype == np.int64 for c in cols.values())
        assert all(len(c) == space.size for c in cols.values())
        # Row i of the grid is exactly the i-th point of iter_points.
        rows = list(zip(*(cols[n].tolist() for n in space.names)))
        points = [
            tuple(p[n] for n in space.names) for p in space.iter_points()
        ]
        assert rows == points

    def test_grid_covers_full_product_space(self):
        cols = GEMM_SPACE.grid()
        assert len(cols["ms"]) == GEMM_SPACE.size
        for name, vals in GEMM_SPACE.params:
            assert set(np.unique(cols[name])) == set(vals)


class TestTable1Space:
    def test_all_params_within_16(self):
        for base in (GEMM_SPACE, CONV_SPACE):
            sp = table1_space(base)
            for name, vals in sp.params:
                if name == "db":
                    assert vals == (1, 2)
                else:
                    assert vals == (1, 2, 4, 8, 16)

    def test_preserves_parameter_names(self):
        assert table1_space(GEMM_SPACE).names == GEMM_SPACE.names

    def test_values_capped_at_16(self):
        sp = table1_space(GEMM_SPACE)
        assert max(max(vals) for _, vals in sp.params) == 16
        # The production space reaches much larger tiles.
        assert max(GEMM_SPACE.values("ml")) > 16


class TestEnumerateLegal:
    def test_limit_respected(self):
        space = ParamSpace(
            "t",
            (("ms", (2,)), ("ns", (4,)), ("ml", (32, 64)), ("nl", (32, 64)),
             ("u", (8, 16)), ("ks", (1,)), ("kl", (1,)), ("kg", (1,)),
             ("vec", (1,)), ("db", (1, 2))),
        )
        out = enumerate_legal(
            space, GemmConfig.from_dict, lambda c: True, limit=3
        )
        assert len(out) == 3

    def test_filter_applied(self):
        space = ParamSpace(
            "t",
            (("ms", (2, 4)), ("ns", (4,)), ("ml", (32,)), ("nl", (32,)),
             ("u", (8,)), ("ks", (1,)), ("kl", (1,)), ("kg", (1,)),
             ("vec", (1,)), ("db", (1,))),
        )
        out = enumerate_legal(
            space, GemmConfig.from_dict, lambda c: c.ms == 4
        )
        assert len(out) == 1 and out[0].ms == 4
