"""End-to-end tests of the Isaac tuner and the profile cache."""

import numpy as np
import pytest

from repro.core.profile_cache import ProfileCache
from repro.core.tuner import Isaac, TuneReport
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import TESLA_P100


class TestIsaacLifecycle:
    def test_requires_tune_before_inference(self):
        tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
        assert not tuner.is_tuned
        with pytest.raises(RuntimeError, match="tune"):
            tuner.top_k(GemmShape(64, 64, 64))

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Isaac(TESLA_P100, op="fft")

    def test_default_dtypes_by_op(self):
        assert DType.FP64 in Isaac(TESLA_P100, op="gemm").dtypes
        assert DType.FP64 not in Isaac(TESLA_P100, op="conv").dtypes


class TestTunedGemm:
    """Uses the session-scoped small tuner from conftest."""

    def test_report(self, trained_gemm_tuner):
        assert trained_gemm_tuner.is_tuned
        assert trained_gemm_tuner.fit_result.val_mse < 0.5
        assert "MSE" in str(
            TuneReport(n_samples=10, val_mse=0.1, hidden=(32,))
        )

    def test_top_k_returns_sorted_predictions(self, trained_gemm_tuner):
        shape = GemmShape(1024, 1024, 1024, DType.FP32, False, True)
        top = trained_gemm_tuner.top_k(shape, k=10)
        preds = [t.predicted_tflops for t in top]
        assert preds == sorted(preds, reverse=True)

    def test_best_kernel_quality(self, trained_gemm_tuner):
        """Even the tiny-budget tuner must find a decent square kernel."""
        shape = GemmShape(2048, 2048, 2048, DType.FP32, False, True)
        best = trained_gemm_tuner.best_kernel(shape, k=60, reps=3)
        assert best.measured_tflops > 0.5 * TESLA_P100.peak_tflops(DType.FP32)

    def test_input_awareness(self, trained_gemm_tuner):
        """Different input shapes must get different kernels — the defining
        property of input-aware tuning."""
        square = trained_gemm_tuner.best_kernel(
            GemmShape(2048, 2048, 2048, DType.FP32, False, True), k=60
        ).config
        deep = trained_gemm_tuner.best_kernel(
            GemmShape(32, 32, 60000, DType.FP32, False, True), k=60
        ).config
        assert square != deep
        # Deep reductions must be split; square needs at most a mild split.
        assert deep.kg > 1 or deep.kl > 1
        assert square.kg <= 2

    def test_tflops_shortcut(self, trained_gemm_tuner):
        shape = GemmShape(512, 512, 512, DType.FP32, False, True)
        t = trained_gemm_tuner.tflops(shape, k=40)
        assert t > 0


class TestProfileCache:
    def test_round_trip(self, tmp_path, trained_gemm_tuner):
        cache = ProfileCache(tmp_path / "profiles.json")
        shape = GemmShape(512, 512, 512, DType.FP32, False, True)
        best = trained_gemm_tuner.best_kernel(shape, k=40, cache=cache)
        assert len(cache) == 1
        hit = trained_gemm_tuner.best_kernel(shape, k=40, cache=cache)
        assert hit.config == best.config
        assert hit.measured_tflops == best.measured_tflops

    def test_persistence(self, tmp_path):
        from repro.core.config import GemmConfig

        path = tmp_path / "p.json"
        cache = ProfileCache(path)
        shape = GemmShape(64, 64, 64)
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        cache.put_gemm("dev", shape, cfg, 1.23)
        cache.save()

        reloaded = ProfileCache(path)
        got = reloaded.get_gemm("dev", shape)
        assert got is not None
        assert got[0] == cfg and got[1] == 1.23

    def test_distinct_layouts_distinct_entries(self, tmp_path):
        from repro.core.config import GemmConfig

        cache = ProfileCache(tmp_path / "p.json")
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        cache.put_gemm("dev", GemmShape(64, 64, 64, ta=False), cfg, 1.0)
        cache.put_gemm("dev", GemmShape(64, 64, 64, ta=True), cfg, 2.0)
        assert len(cache) == 2

    def test_conv_entries(self, tmp_path):
        from repro.core.config import ConvConfig

        cache = ProfileCache(tmp_path / "p.json")
        shape = ConvShape.from_output(n=2, p=4, q=4, k=8, c=8, r=3, s=3)
        cfg = ConvConfig(kt=2, pt=2, qt=2, nt=1, kb=8, pb=2, qb=2, nb=2, u=4)
        assert cache.get_conv("dev", shape) is None
        cache.put_conv("dev", shape, cfg, 0.5)
        got = cache.get_conv("dev", shape)
        assert got == (cfg, 0.5)
