"""Unit tests for repro.core.types."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import (
    ConvShape,
    DType,
    GemmShape,
    ceil_div,
    is_pow2,
    log2_int,
    round_up,
)


class TestDType:
    def test_sizes(self):
        assert DType.FP16.size == 2
        assert DType.FP32.size == 4
        assert DType.FP64.size == 8

    def test_short_names(self):
        assert DType.FP16.short_name == "h"
        assert DType.FP32.short_name == "s"
        assert DType.FP64.short_name == "d"

    def test_numpy_names(self):
        import numpy as np

        for dt in DType:
            assert np.dtype(dt.numpy_name).itemsize == dt.size

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("fp16", DType.FP16),
            ("half", DType.FP16),
            ("FLOAT32", DType.FP32),
            ("double", DType.FP64),
        ],
    )
    def test_from_name(self, name, expected):
        assert DType.from_name(name) is expected

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            DType.from_name("bf16")


class TestGemmShape:
    def test_flops(self):
        s = GemmShape(4, 5, 6)
        assert s.flops == 2 * 4 * 5 * 6

    def test_bytes_moved(self):
        s = GemmShape(4, 5, 6, DType.FP64)
        assert s.bytes_moved == (4 * 6 + 6 * 5 + 4 * 5) * 8

    def test_arithmetic_intensity_grows_with_size(self):
        small = GemmShape(64, 64, 64)
        big = GemmShape(2048, 2048, 2048)
        assert big.arithmetic_intensity > small.arithmetic_intensity

    @pytest.mark.parametrize(
        "ta,tb,code",
        [(False, False, "NN"), (False, True, "NT"),
         (True, False, "TN"), (True, True, "TT")],
    )
    def test_layout_code(self, ta, tb, code):
        assert GemmShape(8, 8, 8, ta=ta, tb=tb).layout_code == code

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmShape(0, 4, 4)
        with pytest.raises(ValueError):
            GemmShape(4, -1, 4)

    def test_describe_mentions_extents(self):
        text = GemmShape(12, 34, 56).describe()
        assert "M=12" in text and "N=34" in text and "K=56" in text

    def test_frozen(self):
        s = GemmShape(8, 8, 8)
        with pytest.raises(AttributeError):
            s.m = 16


class TestConvShape:
    def test_output_extents_stride1(self):
        s = ConvShape(n=2, c=3, h=10, w=12, k=4, r=3, s=5)
        assert s.p == 8 and s.q == 8

    def test_from_output_round_trips(self):
        s = ConvShape.from_output(n=16, p=7, q=7, k=128, c=832, r=5, s=5)
        assert (s.p, s.q) == (7, 7)
        assert s.h == 11 and s.w == 11

    def test_npq_crs(self):
        s = ConvShape.from_output(n=16, p=7, q=7, k=128, c=832, r=5, s=5)
        assert s.npq == 16 * 7 * 7 == 784
        assert s.crs == 832 * 25 == 20800

    def test_flops(self):
        s = ConvShape.from_output(n=2, p=3, q=3, k=4, c=5, r=2, s=2)
        assert s.flops == 2 * 4 * 3 * 3 * 2 * 5 * 2 * 2

    def test_implicit_gemm_dims(self):
        s = ConvShape.from_output(n=8, p=4, q=4, k=32, c=16, r=3, s=3)
        g = s.implicit_gemm()
        assert (g.m, g.n, g.k) == (s.npq, s.k, s.crs)
        assert g.dtype is s.dtype

    def test_padding_and_stride(self):
        s = ConvShape(n=1, c=1, h=8, w=8, k=1, r=3, s=3,
                      pad_h=1, pad_w=1, stride_h=2, stride_w=2)
        assert s.p == 4 and s.q == 4

    def test_rejects_filter_larger_than_image(self):
        with pytest.raises(ValueError, match="filter larger"):
            ConvShape(n=1, c=1, h=2, w=2, k=1, r=5, s=5)


class TestIntHelpers:
    @given(st.integers(1, 10**6), st.integers(1, 10**4))
    def test_ceil_div_property(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b

    def test_ceil_div_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(1, 10**6), st.integers(1, 10**4))
    def test_round_up_property(self, a, b):
        r = round_up(a, b)
        assert r % b == 0 and 0 <= r - a < b

    def test_is_pow2(self):
        assert all(is_pow2(1 << i) for i in range(20))
        assert not any(is_pow2(x) for x in (0, -2, 3, 6, 12, 100))

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(1024) == 10
        with pytest.raises(ValueError):
            log2_int(12)
