"""The sharded worker tier: warm boot, routing, crash recovery.

The pool's contract has three legs and each gets hammered here:

* **zero-copy warm boot** — workers rebuild tuners from fit bytes and
  attach candidate columns / prescaled ``H0`` terms as views over one
  shared segment (the boot handshake reports the accounting);
* **determinism across processes** — a worker's answer for any request
  is config- and measurement-identical to the in-process search, even
  when two different workers answer the same batch;
* **crash recovery** — a worker hard-killed mid-flush is respawned
  against the same shared state and the job replayed, so callers see
  the identical result late rather than an error, and nothing leaks a
  stuck future.
"""

import threading
import time

import pytest

from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.service.async_engine import AsyncEngine
from repro.service.engine import Engine, KernelRequest
from repro.service.worker_pool import WorkerCrashed, WorkerPool

K = 8
REPS = 2

DEVICE = TESLA_P100.name


def _shape(m: int, n: int, k: int, ta=False, tb=True) -> GemmShape:
    return GemmShape(m, n, k, DType.FP32, ta, tb)


@pytest.fixture(scope="module")
def pool_engine(trained_gemm_tuner):
    engine = Engine(max_workers=0)
    engine.register(trained_gemm_tuner)
    # One warm query so the export has hot state to share: enumerated
    # candidate records and a prescaled H0 snapshot.
    engine.query(KernelRequest("gemm", _shape(64, 64, 64), k=K, reps=REPS))
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def pool(pool_engine):
    """One 2-worker pool shared by the module (boot costs two spawns)."""
    with WorkerPool(pool_engine, 2) as p:
        yield p


# ----------------------------------------------------------------------
# Warm boot + health
# ----------------------------------------------------------------------

def test_warm_boot_shares_state(pool):
    assert len(pool) == 2
    assert pool.shared_bytes > 0
    assert pool.pairs == {(DEVICE, "gemm")}
    for w in pool.stats():
        assert w["alive"]
        # Every worker mapped the same one segment (not a copy of it)
        # and seeded its candidate caches from shared views.
        assert w["boot_shared_bytes"] == pool.shared_bytes
        assert w["boot_seeded_records"] > 0
        # The parent's hot searcher had prescaled H0 terms to adopt.
        assert w["boot_adopted_h0"] >= 1


def test_ping_reports_live_accounting(pool):
    for w in range(len(pool)):
        stats = pool.ping(w)
        assert stats["shared_bytes"] == pool.shared_bytes
        assert stats["seeded_records"] > 0
        assert stats["searches"] >= 0


def test_routing_is_consistent_and_spreads(pool):
    keys = [f"gemm|{DEVICE}|fp32|{i}" for i in range(200)]
    owners = [pool.route(k) for k in keys]
    assert owners == [pool.route(k) for k in keys]  # stable
    assert set(owners) == {0, 1}  # both workers own a share


# ----------------------------------------------------------------------
# Determinism across processes
# ----------------------------------------------------------------------

def test_flush_matches_inprocess_search_on_every_worker(
    pool, trained_gemm_tuner
):
    """Both workers answer the same batch; both equal the direct search."""
    shapes = [
        _shape(64, 96, 128),
        _shape(256, 48, 512, ta=True),
        _shape(320, 320, 64, tb=False),
    ]
    futures = [
        pool.submit_flush(w, DEVICE, "gemm", shapes, K, REPS)
        for w in range(len(pool))
    ]
    direct = [
        trained_gemm_tuner.best_kernel(s, k=K, reps=REPS) for s in shapes
    ]
    for future in futures:
        results = future.result(timeout=300)
        assert len(results) == len(shapes)
        for (ok, payload), want in zip(results, direct):
            assert ok, payload
            config, predicted, measured, version = payload
            assert config == want.config
            assert predicted == want.predicted_tflops
            assert measured == want.measured_tflops
            assert version == 0  # boot fit: the offline model


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------

def test_kill_mid_flush_respawns_and_replays(pool, trained_gemm_tuner):
    """A worker killed mid-flush answers anyway — late, not wrong."""
    # A fat batch of fresh shapes so the kill lands mid-search.
    shapes = [_shape(1024, 1024, 992 + 16 * i) for i in range(6)]
    victim = 0
    before = pool.stats()[victim]
    future = pool.submit_flush(victim, DEVICE, "gemm", shapes, K, REPS)
    time.sleep(0.2)
    pool.kill_worker(victim)

    results = future.result(timeout=600)  # not stuck, despite the kill
    after = pool.stats()[victim]
    assert after["alive"]
    assert after["respawns"] >= before["respawns"] + 1
    assert after["retries"] >= before["retries"] + 1
    for (ok, payload), shape in zip(results, shapes):
        assert ok, payload
        want = trained_gemm_tuner.best_kernel(shape, k=K, reps=REPS)
        assert payload[0] == want.config
        assert payload[2] == want.measured_tflops


def test_async_front_door_survives_worker_kill(trained_gemm_tuner):
    """End to end: AsyncEngine retries a killed worker transparently."""
    inner = Engine(max_workers=0)
    inner.register(trained_gemm_tuner)
    engine = AsyncEngine(inner, own_engine=True, workers=1).start()
    try:
        assert engine.start_workers() == 1
        shape = _shape(1024, 992, 1024, ta=True)
        request = KernelRequest("gemm", shape, k=K, reps=REPS)

        reply_box = {}

        def client():
            reply_box["reply"] = engine.query_sync(request)

        t = threading.Thread(target=client)
        t.start()
        time.sleep(0.3)  # let the flush reach the worker
        engine._pool.kill_worker(0)
        t.join(timeout=600)
        assert not t.is_alive(), "query stuck after worker kill"

        want = trained_gemm_tuner.best_kernel(shape, k=K, reps=REPS)
        reply = reply_box["reply"]
        assert reply.config == want.config
        assert reply.measured_tflops == want.measured_tflops
        stats = engine.stats()
        assert stats.workers == 1
        assert stats.worker_flushes >= 1
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Shutdown
# ----------------------------------------------------------------------

def test_broadcast_fits_adopts_new_model_version():
    """An online hot-swap reaches the worker tier: after a broadcast,
    workers answer from the fine-tuned fit and tag its version."""
    from repro.core.tuner import Isaac
    from repro.service.online import OnlineConfig

    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(n_samples=900, seed=7, epochs=8, generative_target=80)
    engine = Engine(
        max_workers=0,
        online=OnlineConfig(update_every=4, epochs=2, anchor_size=64),
    )
    engine.register(tuner)
    # Traffic into the replay buffer (k measured pairs per miss).
    engine.query(KernelRequest("gemm", _shape(64, 64, 64), k=K, reps=REPS))
    try:
        with WorkerPool(engine, 1) as pool:
            shape = _shape(96, 96, 96)
            ((ok, payload),) = pool.submit_flush(
                0, DEVICE, "gemm", [shape], K, REPS
            ).result(timeout=300)
            assert ok and payload[3] == 0  # booted on the offline fit

            assert engine.run_online_updates()
            version = engine.model_version(DEVICE, "gemm")
            assert version >= 1
            fits = engine.export_fits([(DEVICE, "gemm")])
            assert pool.broadcast_fits(fits) == 1

            shape2 = _shape(128, 80, 128)
            ((ok, payload),) = pool.submit_flush(
                0, DEVICE, "gemm", [shape2], K, REPS
            ).result(timeout=300)
            assert ok and payload[3] == version
            # The adopted fit is bit-equal to the parent's: answers match.
            want = tuner.best_kernel(shape2, k=K, reps=REPS)
            assert payload[0] == want.config
            assert payload[2] == want.measured_tflops
            assert pool.ping(0)["adopted_fits"] == 1
    finally:
        engine.close()


def test_close_is_idempotent_and_fails_fast(pool_engine):
    pool = WorkerPool(pool_engine, 1)
    assert pool.ping(0)["searches"] == 0
    processes = [w.process for w in pool._workers]
    assert all(p is not None and p.is_alive() for p in processes)
    pool.close()
    pool.close()  # second close is a no-op, not an error
    # The drain escalation guarantees no zombie survives close(): every
    # child process is really gone, not just disowned.
    for p in processes:
        assert not p.is_alive()
        assert p.exitcode is not None
    with pytest.raises(WorkerCrashed):
        pool.submit_flush(0, DEVICE, "gemm", [_shape(64, 64, 64)], K, REPS)
    with pytest.raises(WorkerCrashed):
        pool.ping(0)


@pytest.mark.parametrize("kwargs, match", [
    ({"n_workers": 0}, "n_workers"),
    ({"n_workers": 2, "blas_threads": 0}, "blas_threads"),
    ({"n_workers": 2, "retries": -1}, "retries"),
    ({"n_workers": 2, "reply_timeout_s": 0.0}, "reply_timeout_s"),
    ({"n_workers": 2, "heartbeat_s": -1.0}, "heartbeat_s"),
])
def test_constructor_rejects_degenerate_knobs(kwargs, match):
    # Validation fires before the engine is touched or any process
    # spawns, so no engine fixture is needed.
    with pytest.raises(ValueError, match=match):
        WorkerPool(None, **kwargs)
