"""Tests pinning the benchmark workloads to the paper's published tables."""

import pytest

from repro.core.types import DType
from repro.workloads.conv_suites import (
    TABLE5_NPQ_CRS,
    TABLE5_TASKS,
    fp16_tasks,
    task,
)
from repro.workloads.gemm_suites import (
    FIG8_DTYPES,
    TABLE4_TASKS,
    fig8_tasks,
    tasks_by_group,
)


class TestTable4:
    def test_group_inventory(self):
        groups = {t.group for t in TABLE4_TASKS}
        assert groups == {
            "LINPACK", "DeepBench [F]", "DeepBench [B]", "ICA", "Blocked SVD"
        }

    def test_linpack_is_square_nt(self):
        for t in tasks_by_group("LINPACK"):
            s = t.shape
            assert s.m == s.n == s.k
            assert (s.ta, s.tb) == (False, True)

    def test_deepbench_dimensions(self):
        """M = K = 2560 with batch N; backward transposes A (paper §7.3)."""
        for t in tasks_by_group("DeepBench [F]"):
            assert t.shape.m == t.shape.k == 2560
            assert not t.shape.ta
        for t in tasks_by_group("DeepBench [B]"):
            assert t.shape.m == t.shape.k == 2560
            assert t.shape.ta
        ns = sorted(t.shape.n for t in tasks_by_group("DeepBench [F]"))
        assert ns == [16, 32, 64, 128]

    def test_ica_is_deep_covariance(self):
        for t in tasks_by_group("ICA"):
            assert t.shape.k == 60000
            assert t.shape.m == t.shape.n

    def test_svd_k_is_block_size(self):
        for t in tasks_by_group("Blocked SVD"):
            assert t.shape.k == 32

    def test_all_fp32_by_default(self):
        assert all(t.shape.dtype is DType.FP32 for t in TABLE4_TASKS)

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            tasks_by_group("SPARSE")


class TestFig8Precisions:
    def test_assignment(self):
        """Fig 8: half for LINPACK + DeepBench, double for ICA + SVD."""
        assert FIG8_DTYPES["LINPACK"] is DType.FP16
        assert FIG8_DTYPES["ICA"] is DType.FP64
        for t in fig8_tasks():
            assert t.shape.dtype is FIG8_DTYPES[t.group]

    def test_shapes_preserved(self):
        for base, retyped in zip(TABLE4_TASKS, fig8_tasks()):
            assert (base.shape.m, base.shape.n, base.shape.k) == (
                retyped.shape.m, retyped.shape.n, retyped.shape.k
            )


class TestTable5:
    def test_fourteen_layers(self):
        assert len(TABLE5_TASKS) == 14
        assert [t.label for t in TABLE5_TASKS] == [
            f"Conv{i}" for i in range(1, 15)
        ]

    def test_npq_crs_match_paper(self):
        """The derived implicit-GEMM extents must equal the paper's NPQ/CRS
        columns exactly — this pins every (N, P, Q, K, C, R, S) entry."""
        for t in TABLE5_TASKS:
            npq, crs = TABLE5_NPQ_CRS[t.label]
            assert t.shape.npq == npq, t.label
            assert t.shape.crs == crs, t.label

    def test_six_applications(self):
        assert len({t.group for t in TABLE5_TASKS}) == 6

    def test_task_lookup(self):
        assert task("Conv8").shape.c == 832
        with pytest.raises(KeyError):
            task("Conv99")

    def test_fp16_variant(self):
        assert all(t.shape.dtype is DType.FP16 for t in fp16_tasks())
